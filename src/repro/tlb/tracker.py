"""L2 TLB miss tracking: dedicated MSHRs first, In-TLB MSHRs on overflow.

This is the Section 4.5 mechanism.  A miss that cannot be tracked is an
*MSHR failure* — the L2 TLB refuses the request and the L1 side must
retry, which is the contention In-TLB MSHR exists to absorb (Figure 17
counts exactly these failures).
"""

from __future__ import annotations

import enum
from typing import Any

from repro.sim.stats import StatsRegistry
from repro.tlb.mshr import MSHRFile, MSHRResult
from repro.tlb.tlb import TLB


class TrackOutcome(enum.Enum):
    #: A new tracking entry was created: the caller must launch a walk.
    NEW = "new"
    #: Merged onto an in-flight miss: no new walk.
    MERGED = "merged"
    #: MSHR failure: nothing could hold the miss; caller must retry.
    FAILED = "failed"


class L2MissTracker:
    """Routes miss-tracking between the MSHR file and In-TLB MSHR slots."""

    def __init__(
        self,
        tlb: TLB,
        mshr: MSHRFile,
        stats: StatsRegistry,
        *,
        in_tlb_limit: int = 0,
    ) -> None:
        if in_tlb_limit < 0:
            raise ValueError("In-TLB MSHR limit cannot be negative")
        self.tlb = tlb
        self.mshr = mshr
        self.stats = stats
        self.in_tlb_limit = in_tlb_limit

    def track(self, vpn: int, waiter: Any) -> TrackOutcome:
        """Try to track a miss on ``vpn``; see :class:`TrackOutcome`."""
        # Merge paths first: an in-flight miss on the same VPN lives in
        # exactly one of the two structures.
        if self.mshr.is_tracking(vpn):
            result = self.mshr.allocate(vpn, waiter)
            if result is MSHRResult.MERGED:
                return TrackOutcome.MERGED
            return self._fail()
        pending = self.tlb.probe_pending(vpn)
        if pending is not None:
            if len(pending) >= self.mshr.merges:
                self.stats.counters.add(f"{self.tlb.name}.pending_merge_full")
                return self._fail()
            self.tlb.merge_pending(vpn, waiter)
            return TrackOutcome.MERGED

        # Fresh miss: dedicated MSHRs first (the design stays compatible
        # with regular workloads by never touching TLB entries until the
        # MSHR file is saturated).
        result = self.mshr.allocate(vpn, waiter)
        if result is MSHRResult.NEW:
            return TrackOutcome.NEW
        if self.in_tlb_limit and self.tlb.pending_entries < self.in_tlb_limit:
            if self.tlb.allocate_pending(vpn, waiter):
                return TrackOutcome.NEW
            # Every way of the set is already a pending slot — the
            # per-set bottleneck that caps spmv in Section 6.3.
            self.stats.counters.add(f"{self.tlb.name}.pending_set_full")
        return self._fail()

    def _fail(self) -> TrackOutcome:
        self.stats.counters.add("l2tlb.mshr_failures")
        return TrackOutcome.FAILED

    def resolve(self, vpn: int) -> list[Any]:
        """Waiters parked in the *MSHR file* for ``vpn``.

        In-TLB waiters are returned by ``tlb.fill`` when the walk result
        is installed; callers combine both lists.
        """
        return self.mshr.resolve(vpn)

    @property
    def outstanding(self) -> int:
        return self.mshr.occupancy + self.tlb.pending_entries

    def failures(self) -> int:
        return self.stats.counters.get("l2tlb.mshr_failures")
