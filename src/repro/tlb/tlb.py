"""Set-associative TLB with In-TLB MSHR support.

Each way carries the paper's pending bit (Section 4.5): alongside
``invalid`` and ``valid`` states, a way can be repurposed as a
temporary MSHR slot holding metadata for an outstanding miss.  Victim
selection for both fills and pending allocations follows the TLB's
replacement policy, restricted to non-pending ways — a pending entry
must never be silently dropped, because waiters are parked on it.

State layout
============
The TLB used to keep one ``dict[vpn, TLBEntry]`` per set plus a
parallel ``dict[vpn, way]``; ``repro profile`` showed the per-set dict
scans (victim candidate collection, reverse way->vpn lookup) as the
hottest component code in the simulator.  The state is now *flattened
parallel arrays* indexed by ``slot = set_index * ways + way``:

* ``_map`` — one dict mapping key (vpn, or a block key in the
  coalesced subclass) to its slot; the only hashing on the hot path.
* ``_key_of`` — slot -> key (``-1`` when the way is empty), killing the
  reverse scan when a victim way must be resolved back to its key.
* ``_pfn`` / ``_pend`` / ``_waiters`` — per-slot translation, pending
  bit (a ``bytearray``), and parked-waiter list (``None`` when not
  pending).

Victim candidates are produced in way order (``0..ways-1``), not dict
insertion order.  The built-in LRU/FIFO policies are order-independent
(their per-way ticks are unique, so the minimum is unique); plugin
replacement policies now see a *defined* candidate order, which the
registry documents as part of the policy contract.
"""

from __future__ import annotations

from typing import Any

from repro.config import TLBConfig
from repro.memory.replacement import make_policy
from repro.sim.stats import StatsRegistry


class TLB:
    """A TLB level (L1 per-SM or shared L2), optionally with pending ways."""

    def __init__(
        self,
        config: TLBConfig,
        stats: StatsRegistry,
        *,
        name: str,
        replacement_policy: str = "lru",
    ) -> None:
        self.config = config
        self.stats = stats
        self.name = name
        self._num_sets = config.num_sets
        self._ways = (
            config.entries if config.associativity == 0 else config.associativity
        )
        num_slots = self._num_sets * self._ways
        #: key (vpn or block key) -> slot; the one hash on the hot path.
        self._map: dict[int, int] = {}
        self._key_of: list[int] = [-1] * num_slots
        self._pfn: list[int] = [0] * num_slots
        self._pend = bytearray(num_slots)
        #: Waiter list of a pending way (None otherwise); the coalesced
        #: subclass reuses the cell for a valid block's page bitmask.
        self._waiters: list[Any] = [None] * num_slots
        self._free_ways: list[list[int]] = [
            list(range(self._ways)) for _ in range(self._num_sets)
        ]
        self._policies = [
            make_policy(replacement_policy) for _ in range(self._num_sets)
        ]
        self._tick = 0
        self._pending_count = 0
        # Hot-path accessors: the raw counter mapping plus precomputed
        # names, so a lookup costs one dict += instead of a method call
        # and an f-string.
        self._counts = stats.counters.live()
        self._c_lookups = f"{name}.lookups"
        self._c_misses = f"{name}.misses"
        self._c_hits = f"{name}.hits"
        self._c_pending_resolved = f"{name}.pending_resolved"
        self._c_fill_dropped = f"{name}.fill_dropped"
        self._c_pending_allocated = f"{name}.pending_allocated"
        self._c_pending_merged = f"{name}.pending_merged"
        self._c_evictions = f"{name}.evictions"

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def set_index(self, vpn: int) -> int:
        return vpn % self._num_sets

    # ------------------------------------------------------------------
    # Lookup / fill
    # ------------------------------------------------------------------
    def lookup(self, vpn: int) -> int | None:
        """Return the PFN on hit, None on miss.  Pending entries miss."""
        self._tick += 1
        counts = self._counts
        counts[self._c_lookups] += 1
        slot = self._map.get(vpn)
        if slot is None or self._pend[slot]:
            counts[self._c_misses] += 1
            return None
        set_index, way = divmod(slot, self._ways)
        self._policies[set_index].touch(way, self._tick)
        counts[self._c_hits] += 1
        return self._pfn[slot]

    def probe_pending(self, vpn: int) -> list[Any] | None:
        """The live waiter list of ``vpn``'s pending way, or None.

        No stats are recorded.  The list is the TLB's own (mutations
        belong to :meth:`merge_pending`); callers only inspect it.
        """
        slot = self._map.get(vpn)
        if slot is not None and self._pend[slot]:
            return self._waiters[slot]
        return None

    def fill(self, vpn: int, pfn: int) -> list[Any]:
        """Install a translation; returns waiters of a resolved pending way.

        Mirrors the paper's Figure 13 flow: the L2 TLB controller clears
        the pending state of the tag-matching way, fills the PTE, and
        resolves all misses parked on it.  When the set is entirely
        occupied by *other* pending entries the fill is dropped (the
        translation still returns to the requester; it is just not
        cached), because pending slots must not be evicted.
        """
        self._tick += 1
        slot = self._map.get(vpn)
        if slot is not None:
            waiters: list[Any] = []
            if self._pend[slot]:
                waiters = self._waiters[slot]
                self._waiters[slot] = None
                self._pend[slot] = 0
                self._pending_count -= 1
                self._counts[self._c_pending_resolved] += 1
            self._pfn[slot] = pfn
            set_index, way = divmod(slot, self._ways)
            self._policies[set_index].touch(way, self._tick)
            return waiters

        slot = self._take_slot(self.set_index(vpn))
        if slot is None:
            self._counts[self._c_fill_dropped] += 1
            return []
        self._install(slot, vpn, pfn)
        return []

    def invalidate(self, vpn: int) -> bool:
        """Drop a valid translation (TLB shootdown).  Pending ways stay."""
        slot = self._map.get(vpn)
        if slot is None or self._pend[slot]:
            return False
        self._evict_slot(slot)
        return True

    # ------------------------------------------------------------------
    # In-TLB MSHR (pending entries)
    # ------------------------------------------------------------------
    def allocate_pending(self, vpn: int, waiter: Any) -> bool:
        """Repurpose a victim way as an MSHR slot for ``vpn``.

        Returns False when every way of the set is already a pending
        slot (the per-set bottleneck that limits spmv in Section 6.3).
        """
        self._tick += 1
        slot = self._map.get(vpn)
        if slot is not None and self._pend[slot]:
            raise ValueError(f"vpn {vpn:#x} already pending; merge instead")
        if slot is not None:
            # A valid entry exists; caller should have hit.  Replace it.
            self._evict_slot(slot)
        slot = self._take_slot(self.set_index(vpn))
        if slot is None:
            return False
        self._install(slot, vpn, 0)
        self._pend[slot] = 1
        self._waiters[slot] = [waiter]
        self._pending_count += 1
        self._counts[self._c_pending_allocated] += 1
        return True

    def merge_pending(self, vpn: int, waiter: Any) -> bool:
        """Park another waiter on an existing pending entry."""
        slot = self._map.get(vpn)
        if slot is None or not self._pend[slot]:
            return False
        self._waiters[slot].append(waiter)
        self._counts[self._c_pending_merged] += 1
        return True

    @property
    def pending_entries(self) -> int:
        return self._pending_count

    def pending_vpns(self) -> list[int]:
        """VPNs of every in-TLB MSHR (pending) way (audit support)."""
        pend = self._pend
        return [key for key, slot in self._map.items() if pend[slot]]

    def pending_waiter_count(self, vpn: int) -> int:
        """Waiters parked on ``vpn``'s pending way (0 if none)."""
        waiters = self.probe_pending(vpn)
        return len(waiters) if waiters is not None else 0

    # ------------------------------------------------------------------
    # Way management
    # ------------------------------------------------------------------
    def _take_slot(self, set_index: int) -> int | None:
        """Claim a free or victim slot in ``set_index``; None when every
        way is a pending MSHR slot."""
        free = self._free_ways[set_index]
        base = set_index * self._ways
        if free:
            return base + free.pop()
        pend = self._pend
        candidates = [way for way in range(self._ways) if not pend[base + way]]
        if not candidates:
            return None
        way = self._policies[set_index].victim(candidates)
        self._evict_slot(base + way)
        return base + free.pop()

    def _install(self, slot: int, key: int, pfn: int) -> None:
        self._map[key] = slot
        self._key_of[slot] = key
        self._pfn[slot] = pfn
        set_index, way = divmod(slot, self._ways)
        self._policies[set_index].touch(way, self._tick)

    def _evict_slot(self, slot: int) -> None:
        del self._map[self._key_of[slot]]
        self._key_of[slot] = -1
        self._waiters[slot] = None
        set_index, way = divmod(slot, self._ways)
        self._policies[set_index].forget(way)
        self._free_ways[set_index].append(way)
        self._counts[self._c_evictions] += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def hit_rate(self) -> float:
        lookups = self.stats.counters.get(self._c_lookups)
        if lookups == 0:
            return 0.0
        return self.stats.counters.get(self._c_hits) / lookups

    def occupancy(self) -> int:
        return len(self._map)

    def valid_entries(self) -> int:
        return len(self._map) - self._pending_count
