"""Set-associative TLB with In-TLB MSHR support.

Each entry carries the paper's pending bit (Section 4.5): alongside
``invalid`` and ``valid`` states, an entry can be repurposed as a
temporary MSHR slot holding metadata for an outstanding miss.  Victim
selection for both fills and pending allocations follows the TLB's
replacement policy, restricted to non-pending ways — a pending entry
must never be silently dropped, because waiters are parked on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.config import TLBConfig
from repro.memory.replacement import make_policy
from repro.sim.stats import StatsRegistry


@dataclass
class TLBEntry:
    """One TLB way: a translation or (when pending) an in-TLB MSHR slot."""

    vpn: int
    pfn: int = 0
    pending: bool = False
    waiters: list[Any] = field(default_factory=list)


class TLB:
    """A TLB level (L1 per-SM or shared L2), optionally with pending ways."""

    def __init__(
        self,
        config: TLBConfig,
        stats: StatsRegistry,
        *,
        name: str,
        replacement_policy: str = "lru",
    ) -> None:
        self.config = config
        self.stats = stats
        self.name = name
        self._num_sets = config.num_sets
        self._ways = (
            config.entries if config.associativity == 0 else config.associativity
        )
        self._sets: list[dict[int, TLBEntry]] = [{} for _ in range(self._num_sets)]
        self._way_of: list[dict[int, int]] = [{} for _ in range(self._num_sets)]
        self._free_ways: list[list[int]] = [
            list(range(self._ways)) for _ in range(self._num_sets)
        ]
        self._policies = [
            make_policy(replacement_policy) for _ in range(self._num_sets)
        ]
        self._tick = 0
        self._pending_count = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def set_index(self, vpn: int) -> int:
        return vpn % self._num_sets

    # ------------------------------------------------------------------
    # Lookup / fill
    # ------------------------------------------------------------------
    def lookup(self, vpn: int) -> int | None:
        """Return the PFN on hit, None on miss.  Pending entries miss."""
        self._tick += 1
        set_index = self.set_index(vpn)
        entry = self._sets[set_index].get(vpn)
        self.stats.counters.add(f"{self.name}.lookups")
        if entry is None or entry.pending:
            self.stats.counters.add(f"{self.name}.misses")
            return None
        self._policies[set_index].touch(self._way_of[set_index][vpn], self._tick)
        self.stats.counters.add(f"{self.name}.hits")
        return entry.pfn

    def probe_pending(self, vpn: int) -> TLBEntry | None:
        """Return the pending entry for ``vpn`` without recording stats."""
        entry = self._sets[self.set_index(vpn)].get(vpn)
        if entry is not None and entry.pending:
            return entry
        return None

    def fill(self, vpn: int, pfn: int) -> list[Any]:
        """Install a translation; returns waiters of a resolved pending way.

        Mirrors the paper's Figure 13 flow: the L2 TLB controller clears
        the pending state of the tag-matching way, fills the PTE, and
        resolves all misses parked on it.  When the set is entirely
        occupied by *other* pending entries the fill is dropped (the
        translation still returns to the requester; it is just not
        cached), because pending slots must not be evicted.
        """
        self._tick += 1
        set_index = self.set_index(vpn)
        entry = self._sets[set_index].get(vpn)
        if entry is not None:
            waiters: list[Any] = []
            if entry.pending:
                waiters = entry.waiters
                entry.waiters = []
                entry.pending = False
                self._pending_count -= 1
                self.stats.counters.add(f"{self.name}.pending_resolved")
            entry.pfn = pfn
            self._policies[set_index].touch(self._way_of[set_index][vpn], self._tick)
            return waiters

        way = self._take_way(set_index)
        if way is None:
            self.stats.counters.add(f"{self.name}.fill_dropped")
            return []
        self._install(set_index, way, TLBEntry(vpn=vpn, pfn=pfn))
        return []

    def invalidate(self, vpn: int) -> bool:
        """Drop a valid translation (TLB shootdown).  Pending ways stay."""
        set_index = self.set_index(vpn)
        entry = self._sets[set_index].get(vpn)
        if entry is None or entry.pending:
            return False
        self._evict(set_index, vpn)
        return True

    # ------------------------------------------------------------------
    # In-TLB MSHR (pending entries)
    # ------------------------------------------------------------------
    def allocate_pending(self, vpn: int, waiter: Any) -> bool:
        """Repurpose a victim way as an MSHR slot for ``vpn``.

        Returns False when every way of the set is already a pending
        slot (the per-set bottleneck that limits spmv in Section 6.3).
        """
        self._tick += 1
        set_index = self.set_index(vpn)
        entry = self._sets[set_index].get(vpn)
        if entry is not None and entry.pending:
            raise ValueError(f"vpn {vpn:#x} already pending; merge instead")
        if entry is not None:
            # A valid entry exists; caller should have hit.  Replace it.
            self._evict(set_index, vpn)
        way = self._take_way(set_index)
        if way is None:
            return False
        pending = TLBEntry(vpn=vpn, pending=True, waiters=[waiter])
        self._install(set_index, way, pending)
        self._pending_count += 1
        self.stats.counters.add(f"{self.name}.pending_allocated")
        return True

    def merge_pending(self, vpn: int, waiter: Any) -> bool:
        """Park another waiter on an existing pending entry."""
        entry = self.probe_pending(vpn)
        if entry is None:
            return False
        entry.waiters.append(waiter)
        self.stats.counters.add(f"{self.name}.pending_merged")
        return True

    @property
    def pending_entries(self) -> int:
        return self._pending_count

    def pending_vpns(self) -> list[int]:
        """VPNs of every in-TLB MSHR (pending) way (audit support)."""
        return [
            entry.vpn
            for tlb_set in self._sets
            for entry in tlb_set.values()
            if entry.pending
        ]

    def pending_waiter_count(self, vpn: int) -> int:
        """Waiters parked on ``vpn``'s pending way (0 if none)."""
        entry = self.probe_pending(vpn)
        return len(entry.waiters) if entry is not None else 0

    # ------------------------------------------------------------------
    # Way management
    # ------------------------------------------------------------------
    def _take_way(self, set_index: int) -> int | None:
        free = self._free_ways[set_index]
        if free:
            return free.pop()
        candidates = [
            self._way_of[set_index][vpn]
            for vpn, entry in self._sets[set_index].items()
            if not entry.pending
        ]
        if not candidates:
            return None
        way = self._policies[set_index].victim(candidates)
        victim_vpn = next(
            vpn for vpn, w in self._way_of[set_index].items() if w == way
        )
        self._evict(set_index, victim_vpn)
        return self._free_ways[set_index].pop()

    def _install(self, set_index: int, way: int, entry: TLBEntry) -> None:
        self._sets[set_index][entry.vpn] = entry
        self._way_of[set_index][entry.vpn] = way
        self._policies[set_index].touch(way, self._tick)

    def _evict(self, set_index: int, vpn: int) -> None:
        way = self._way_of[set_index].pop(vpn)
        del self._sets[set_index][vpn]
        self._policies[set_index].forget(way)
        self._free_ways[set_index].append(way)
        self.stats.counters.add(f"{self.name}.evictions")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def hit_rate(self) -> float:
        lookups = self.stats.counters.get(f"{self.name}.lookups")
        if lookups == 0:
            return 0.0
        return self.stats.counters.get(f"{self.name}.hits") / lookups

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def valid_entries(self) -> int:
        return self.occupancy() - self._pending_count
