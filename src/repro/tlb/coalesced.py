"""CoLT-style coalesced TLB (refs [74, 6, 49], Section 2.3).

A coalesced entry covers a ``span``-page aligned block: when the pages
of a block map to *contiguous* physical frames, one entry (base PFN +
per-page valid bits) translates all of them, multiplying TLB reach.
Contiguity detection models CoLT's trick of inspecting the other PTEs
that arrive in the same cache sector as the demand-filled one.

The paper's §2.3 argument — irregular workloads thrash coalesced
entries and (with a scattering frame allocator) rarely exhibit
contiguity at all — falls straight out of this model: enable it via
``GPUConfig.tlb_coalescing_span`` and compare streaming vs power-law
workloads (see ``tests/test_coalesced_tlb.py``).

Valid block entries and pending In-TLB MSHR slots (keyed by raw VPN)
live in the same arrays; block keys are offset into a disjoint integer
range so the two can never collide.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.config import TLBConfig
from repro.sim.stats import StatsRegistry
from repro.tlb.tlb import TLB, TLBEntry

#: Keys >= this are block entries; raw VPNs (< 2^33) stay below it.
_BLOCK_KEY_BASE = 1 << 40

#: vpn -> pfn probe; raises/returns None for unmapped neighbours.
TranslateFn = Callable[[int], int | None]


class CoalescedTLB(TLB):
    """A TLB whose valid entries cover aligned multi-page blocks."""

    def __init__(
        self,
        config: TLBConfig,
        stats: StatsRegistry,
        *,
        name: str,
        span: int,
        translate: TranslateFn,
    ) -> None:
        if span < 2 or span & (span - 1):
            raise ValueError("coalescing span must be a power of two >= 2")
        super().__init__(config, stats, name=name)
        self.span = span
        self._translate = translate

    # ------------------------------------------------------------------
    # Key handling
    # ------------------------------------------------------------------
    def _block_key(self, vpn: int) -> int:
        return _BLOCK_KEY_BASE + vpn // self.span

    # ------------------------------------------------------------------
    # Lookup / fill
    # ------------------------------------------------------------------
    def lookup(self, vpn: int) -> int | None:
        self._tick += 1
        self.stats.counters.add(f"{self.name}.lookups")
        key = self._block_key(vpn)
        set_index = self.set_index(key)
        entry = self._sets[set_index].get(key)
        offset = vpn % self.span
        if entry is not None and not entry.pending and (entry.waiters[0] >> offset) & 1:
            self._policies[set_index].touch(self._way_of[set_index][key], self._tick)
            self.stats.counters.add(f"{self.name}.hits")
            return entry.pfn + offset
        self.stats.counters.add(f"{self.name}.misses")
        return None

    def fill(self, vpn: int, pfn: int) -> list[Any]:
        """Install a coalesced block entry; resolves any pending slot.

        The demand PTE's sector carries its block neighbours, so their
        contiguity is checked for free; contiguous neighbours join the
        entry's valid mask (bit per page).
        """
        self._tick += 1
        waiters: list[Any] = []
        pending = self.probe_pending(vpn)
        if pending is not None:
            set_index = self.set_index(vpn)
            waiters = pending.waiters
            pending.waiters = []
            pending.pending = False
            self._pending_count -= 1
            self.stats.counters.add(f"{self.name}.pending_resolved")
            self._evict(set_index, vpn)

        offset = vpn % self.span
        base_vpn = vpn - offset
        base_pfn = pfn - offset
        mask = 1 << offset
        for other in range(self.span):
            if other == offset:
                continue
            neighbour_pfn = self._probe_neighbour(base_vpn + other)
            if neighbour_pfn is not None and neighbour_pfn == base_pfn + other:
                mask |= 1 << other
        if mask != 1 << offset:
            self.stats.counters.add(f"{self.name}.coalesced_fills")

        key = self._block_key(vpn)
        set_index = self.set_index(key)
        entry = self._sets[set_index].get(key)
        if entry is not None and not entry.pending:
            entry.pfn = base_pfn
            entry.waiters = [mask | entry.waiters[0]]
            self._policies[set_index].touch(self._way_of[set_index][key], self._tick)
            return waiters
        way = self._take_way(set_index)
        if way is None:
            self.stats.counters.add(f"{self.name}.fill_dropped")
            return waiters
        # Reuse TLBEntry: ``vpn`` holds the block key, ``waiters[0]`` the
        # valid-page bitmask (a block entry is never pending).
        block_entry = TLBEntry(vpn=key, pfn=base_pfn, waiters=[mask])
        self._install(set_index, way, block_entry)
        return waiters

    def _probe_neighbour(self, vpn: int) -> int | None:
        try:
            return self._translate(vpn)
        except Exception:
            return None

    def invalidate(self, vpn: int) -> bool:
        """Shootdown: clear the page's bit; drop the entry when empty."""
        key = self._block_key(vpn)
        set_index = self.set_index(key)
        entry = self._sets[set_index].get(key)
        if entry is None or entry.pending:
            return False
        offset = vpn % self.span
        if not (entry.waiters[0] >> offset) & 1:
            return False
        entry.waiters = [entry.waiters[0] & ~(1 << offset)]
        if entry.waiters[0] == 0:
            self._evict(set_index, key)
        return True

    def coverage(self) -> int:
        """Total pages currently translatable (reach, in pages)."""
        return sum(
            bin(entry.waiters[0]).count("1")
            for tlb_set in self._sets
            for entry in tlb_set.values()
            if not entry.pending
        )
