"""CoLT-style coalesced TLB (refs [74, 6, 49], Section 2.3).

A coalesced entry covers a ``span``-page aligned block: when the pages
of a block map to *contiguous* physical frames, one entry (base PFN +
per-page valid bits) translates all of them, multiplying TLB reach.
Contiguity detection models CoLT's trick of inspecting the other PTEs
that arrive in the same cache sector as the demand-filled one.

The paper's §2.3 argument — irregular workloads thrash coalesced
entries and (with a scattering frame allocator) rarely exhibit
contiguity at all — falls straight out of this model: enable it via
``GPUConfig.tlb_coalescing_span`` and compare streaming vs power-law
workloads (see ``tests/test_coalesced_tlb.py``).

Valid block entries and pending In-TLB MSHR slots (keyed by raw VPN)
live in the same flattened arrays; block keys are offset into a
disjoint integer range so the two can never collide.  A block slot
reuses the base class's per-slot ``_waiters`` cell to hold its
valid-page bitmask (an ``int`` — a block entry is never pending, and a
pending slot is never a block, so the cell is unambiguous).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.config import TLBConfig
from repro.sim.stats import StatsRegistry
from repro.tlb.tlb import TLB

#: Keys >= this are block entries; raw VPNs (< 2^33) stay below it.
_BLOCK_KEY_BASE = 1 << 40

#: vpn -> pfn probe; raises/returns None for unmapped neighbours.
TranslateFn = Callable[[int], int | None]


class CoalescedTLB(TLB):
    """A TLB whose valid entries cover aligned multi-page blocks."""

    def __init__(
        self,
        config: TLBConfig,
        stats: StatsRegistry,
        *,
        name: str,
        span: int,
        translate: TranslateFn,
    ) -> None:
        if span < 2 or span & (span - 1):
            raise ValueError("coalescing span must be a power of two >= 2")
        super().__init__(config, stats, name=name)
        self.span = span
        self._translate = translate
        self._c_coalesced_fills = f"{name}.coalesced_fills"

    # ------------------------------------------------------------------
    # Key handling
    # ------------------------------------------------------------------
    def _block_key(self, vpn: int) -> int:
        return _BLOCK_KEY_BASE + vpn // self.span

    # ------------------------------------------------------------------
    # Lookup / fill
    # ------------------------------------------------------------------
    def lookup(self, vpn: int) -> int | None:
        self._tick += 1
        counts = self._counts
        counts[self._c_lookups] += 1
        slot = self._map.get(_BLOCK_KEY_BASE + vpn // self.span)
        offset = vpn % self.span
        if (
            slot is not None
            and not self._pend[slot]
            and (self._waiters[slot] >> offset) & 1
        ):
            set_index, way = divmod(slot, self._ways)
            self._policies[set_index].touch(way, self._tick)
            counts[self._c_hits] += 1
            return self._pfn[slot] + offset
        counts[self._c_misses] += 1
        return None

    def fill(self, vpn: int, pfn: int) -> list[Any]:
        """Install a coalesced block entry; resolves any pending slot.

        The demand PTE's sector carries its block neighbours, so their
        contiguity is checked for free; contiguous neighbours join the
        entry's valid mask (bit per page).
        """
        self._tick += 1
        counts = self._counts
        waiters: list[Any] = []
        slot = self._map.get(vpn)
        if slot is not None and self._pend[slot]:
            waiters = self._waiters[slot]
            self._waiters[slot] = None
            self._pend[slot] = 0
            self._pending_count -= 1
            counts[self._c_pending_resolved] += 1
            self._evict_slot(slot)

        offset = vpn % self.span
        base_vpn = vpn - offset
        base_pfn = pfn - offset
        mask = 1 << offset
        for other in range(self.span):
            if other == offset:
                continue
            neighbour_pfn = self._probe_neighbour(base_vpn + other)
            if neighbour_pfn is not None and neighbour_pfn == base_pfn + other:
                mask |= 1 << other
        if mask != 1 << offset:
            counts[self._c_coalesced_fills] += 1

        key = self._block_key(vpn)
        set_index = self.set_index(key)
        slot = self._map.get(key)
        if slot is not None and not self._pend[slot]:
            self._pfn[slot] = base_pfn
            self._waiters[slot] = mask | self._waiters[slot]
            self._policies[set_index].touch(slot - set_index * self._ways, self._tick)
            return waiters
        slot = self._take_slot(set_index)
        if slot is None:
            counts[self._c_fill_dropped] += 1
            return waiters
        self._install(slot, key, base_pfn)
        self._waiters[slot] = mask
        return waiters

    def _probe_neighbour(self, vpn: int) -> int | None:
        try:
            return self._translate(vpn)
        except Exception:
            return None

    def invalidate(self, vpn: int) -> bool:
        """Shootdown: clear the page's bit; drop the entry when empty."""
        slot = self._map.get(self._block_key(vpn))
        if slot is None or self._pend[slot]:
            return False
        offset = vpn % self.span
        mask = self._waiters[slot]
        if not (mask >> offset) & 1:
            return False
        mask &= ~(1 << offset)
        self._waiters[slot] = mask
        if mask == 0:
            self._evict_slot(slot)
        return True

    def coverage(self) -> int:
        """Total pages currently translatable (reach, in pages)."""
        pend = self._pend
        masks = self._waiters
        return sum(
            masks[slot].bit_count()
            for slot in self._map.values()
            if not pend[slot]
        )
