"""Page Walk Cache: lets walks skip upper page-table levels.

A PWC entry caches the physical base address of one page-table node,
keyed by ``(level, table_tag)``.  Probing for a VPN returns the deepest
cached node along its walk path so the walk starts there; the root is
always known (it lives in the per-process page-table base register), so
a cold probe simply starts at the root level.
"""

from __future__ import annotations

from repro.memory.replacement import make_policy
from repro.pagetable.address import AddressLayout
from repro.sim.stats import StatsRegistry


class PageWalkCache:
    """Fully associative cache of page-table node base addresses.

    ``min_level`` bounds how deep the PWC caches: the default of 2
    means pointers *to leaf tables are not cached* — like an x86 PDE
    cache, the walk always reads at least the final PTE from memory
    (after one upper-level read).  Setting ``min_level=1`` models an
    aggressive translation cache that can collapse walks to one access.
    """

    def __init__(
        self,
        entries: int,
        layout: AddressLayout,
        root_base: int,
        stats: StatsRegistry,
        *,
        name: str = "pwc",
        min_level: int = 2,
        replacement_policy: str = "lru",
    ) -> None:
        if entries < 0:
            raise ValueError("PWC size cannot be negative")
        if min_level < 1:
            raise ValueError("min_level must be >= 1")
        self.capacity = entries
        self.layout = layout
        self.root_base = root_base
        self.stats = stats
        self.name = name
        self.min_level = min_level
        self._entries: dict[tuple[int, int], int] = {}
        self._policy = make_policy(replacement_policy)
        self._way_of: dict[tuple[int, int], int] = {}
        #: way -> key (None when free): resolves a victim way without
        #: the reverse scan over ``_way_of``.
        self._key_of: list[tuple[int, int] | None] = [None] * entries
        self._free = list(range(entries))
        self._tick = 0
        self._counts = stats.counters.live()
        self._c_probes = f"{name}.probes"
        self._c_hits = f"{name}.hits"
        self._c_root_fallbacks = f"{name}.root_fallbacks"
        self._c_evictions = f"{name}.evictions"
        self._c_fills = f"{name}.fills"

    def probe(self, vpn: int) -> tuple[int, int]:
        """Deepest cached node for ``vpn``: returns ``(level, node_base)``.

        Levels below the root are only returned on a PWC hit; the
        fallback is ``(root_level, root_base)``.
        """
        self._tick += 1
        counts = self._counts
        counts[self._c_probes] += 1
        table_tag = self.layout.table_tag
        entries = self._entries
        for level in range(self.min_level, self.layout.levels):
            key = (level, table_tag(vpn, level))
            base = entries.get(key)
            if base is not None:
                self._policy.touch(self._way_of[key], self._tick)
                counts[self._c_hits] += 1
                return level, base
        counts[self._c_root_fallbacks] += 1
        return self.layout.levels, self.root_base

    def fill(self, vpn: int, level: int, node_base: int) -> None:
        """Cache the node at ``level`` on ``vpn``'s path (FPWC instruction)."""
        if self.capacity == 0 or level >= self.layout.levels or level < self.min_level:
            return
        self._tick += 1
        key = (level, self.layout.table_tag(vpn, level))
        if key in self._entries:
            self._entries[key] = node_base
            self._policy.touch(self._way_of[key], self._tick)
            return
        if self._free:
            way = self._free.pop()
        else:
            # Free list empty means every way is occupied: candidates
            # are simply all ways, in way order (the built-in policies
            # are candidate-order-independent — ticks are unique).
            way = self._policy.victim(list(range(self.capacity)))
            victim_key = self._key_of[way]
            del self._entries[victim_key]
            del self._way_of[victim_key]
            self._policy.forget(way)
            self._counts[self._c_evictions] += 1
        self._entries[key] = node_base
        self._way_of[key] = way
        self._key_of[way] = key
        self._policy.touch(way, self._tick)
        self._counts[self._c_fills] += 1

    def hit_rate(self) -> float:
        probes = self.stats.counters.get(self._c_probes)
        if probes == 0:
            return 0.0
        return self.stats.counters.get(self._c_hits) / probes

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def register_metrics(self, metrics) -> None:
        """Expose PWC effectiveness as sampled gauges."""
        metrics.register_gauge(f"{self.name}.hit_rate", self.hit_rate)
        metrics.register_gauge(f"{self.name}.occupancy", lambda: self.occupancy)
