"""Dedicated TLB MSHR file with miss merging.

Each entry tracks one in-flight VPN and up to ``merges`` requests that
collapsed onto it (Table 3: 32 entries x 192 merges at L1, 128 x 46 at
L2).  Allocation distinguishes three outcomes the rest of the system
reacts to differently:

* ``NEW`` — a fresh entry was allocated; the caller must start a walk.
* ``MERGED`` — an existing entry absorbed the request; no new walk.
* ``FULL`` — no entry (or merge slot) available: an *MSHR failure*,
  the event In-TLB MSHR exists to absorb.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.sim.stats import StatsRegistry


class MSHRResult(enum.Enum):
    NEW = "new"
    MERGED = "merged"
    FULL = "full"


class MSHRFile:
    """Fully associative miss-status holding registers for one TLB level."""

    def __init__(
        self,
        entries: int,
        merges: int,
        stats: StatsRegistry,
        *,
        name: str,
    ) -> None:
        if entries < 0 or merges < 1:
            raise ValueError("MSHR file needs entries >= 0 and merges >= 1")
        self.capacity = entries
        #: As-built capacity.  ``capacity`` may be temporarily lowered
        #: (fault injection models MSHR-exhaustion bursts that way);
        #: invariant audits always check occupancy against this bound.
        self.nominal_capacity = entries
        self.merges = merges
        self.stats = stats
        self.name = name
        self._entries: dict[int, list[Any]] = {}
        # allocate/resolve run on the translation hot path: hoist the
        # raw counter mapping and precompute the counter names.
        self._counts = stats.counters.live()
        self._c_merge_full = f"{name}.merge_full"
        self._c_merged = f"{name}.merged"
        self._c_full = f"{name}.full"
        self._c_allocated = f"{name}.allocated"
        self._c_resolved = f"{name}.resolved"

    def allocate(self, vpn: int, waiter: Any) -> MSHRResult:
        """Try to track a miss on ``vpn`` for ``waiter``."""
        waiters = self._entries.get(vpn)
        if waiters is not None:
            if len(waiters) >= self.merges:
                self._counts[self._c_merge_full] += 1
                return MSHRResult.FULL
            waiters.append(waiter)
            self._counts[self._c_merged] += 1
            return MSHRResult.MERGED
        if len(self._entries) >= self.capacity:
            self._counts[self._c_full] += 1
            return MSHRResult.FULL
        self._entries[vpn] = [waiter]
        self._counts[self._c_allocated] += 1
        return MSHRResult.NEW

    def resolve(self, vpn: int) -> list[Any]:
        """Free the entry for ``vpn``; returns its waiters (may be empty)."""
        waiters = self._entries.pop(vpn, None)
        if waiters is None:
            return []
        self._counts[self._c_resolved] += 1
        return waiters

    def is_tracking(self, vpn: int) -> bool:
        return vpn in self._entries

    def set_capacity(self, entries: int) -> None:
        """Adjust the usable entry count (transient fault injection).

        Lowering below the current occupancy only refuses *new*
        allocations; existing entries drain normally.  Never raises the
        bound above ``nominal_capacity``.
        """
        self.capacity = max(0, min(entries, self.nominal_capacity))

    def tracked_vpns(self) -> list[int]:
        """VPNs with a live entry, in allocation order (audit support)."""
        return list(self._entries)

    def waiter_count(self, vpn: int) -> int:
        """Waiters merged onto ``vpn``'s entry (0 when not tracking)."""
        waiters = self._entries.get(vpn)
        return len(waiters) if waiters is not None else 0

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity
