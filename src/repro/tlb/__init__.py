"""TLB substrate: TLB arrays, MSHRs, In-TLB MSHR tracking, page walk cache."""

from repro.tlb.coalesced import CoalescedTLB
from repro.tlb.speculation import ContiguityPredictor
from repro.tlb.mshr import MSHRFile, MSHRResult
from repro.tlb.pwc import PageWalkCache
from repro.tlb.tlb import TLB
from repro.tlb.tracker import L2MissTracker, TrackOutcome

__all__ = [
    "CoalescedTLB",
    "ContiguityPredictor",
    "MSHRFile",
    "MSHRResult",
    "PageWalkCache",
    "TLB",
    "L2MissTracker",
    "TrackOutcome",
]
