"""Avatar-style TLB speculation (ref [72], Section 2.3).

Avatar observes that consecutive virtual pages are often physically
contiguous, so on an L1 TLB miss the physical address can be *guessed*
from a nearby cached translation and the access issued speculatively;
a PTE embedded in the fetched data cacheline validates the guess.  A
correct speculation skips the L2 TLB lookup and the page walk entirely;
a wrong one pays a flush penalty and falls back to the normal walk —
which is why Avatar still suffers page-walk contention on irregular
workloads (the paper's argument for SoftWalker being complementary).

We model the predictor and the two outcomes' timing; validation
correctness is decided against the real page table, standing in for the
in-cacheline PTE check.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.sim.stats import StatsRegistry

#: Pipeline cost of squashing a mis-speculated access (cycles).
MISPREDICT_PENALTY = 20

#: Verified translations the predictor remembers per SM.
HISTORY_ENTRIES = 16


class ContiguityPredictor:
    """Per-SM contiguity predictor over a small translation history.

    ``predict(vpn)`` extrapolates physical contiguity from the
    *nearest* (by virtual distance) recently verified translation, so
    interleaved warps streaming different regions each speculate from
    their own region's history — Avatar's SP mechanism, reduced to a
    16-entry history table per SM.
    """

    def __init__(self, stats: StatsRegistry, *, name: str = "spec") -> None:
        self.stats = stats
        self.name = name
        self._history: OrderedDict[int, int] = OrderedDict()

    def predict(self, vpn: int) -> int | None:
        """Predicted PFN for ``vpn``, or None with no history."""
        if not self._history:
            return None
        nearest = min(self._history, key=lambda seen: abs(seen - vpn))
        prediction = self._history[nearest] + (vpn - nearest)
        if prediction < 0:
            return None
        self.stats.counters.add(f"{self.name}.predictions")
        return prediction

    def observe(self, vpn: int, pfn: int) -> None:
        """Train on a verified translation (TLB fill or validation)."""
        self._history.pop(vpn, None)
        self._history[vpn] = pfn
        while len(self._history) > HISTORY_ENTRIES:
            self._history.popitem(last=False)

    def record_outcome(self, correct: bool) -> None:
        key = "correct" if correct else "wrong"
        self.stats.counters.add(f"{self.name}.{key}")

    def accuracy(self) -> float:
        correct = self.stats.counters.get(f"{self.name}.correct")
        total = correct + self.stats.counters.get(f"{self.name}.wrong")
        return correct / total if total else 0.0
