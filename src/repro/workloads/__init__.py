"""Workloads: synthetic benchmark suite (Table 4) and microbenchmarks."""

from repro.workloads.base import IRREGULAR, REGULAR, TraceWorkload, WorkloadSpec
from repro.workloads.catalog import (
    ALL_ABBRS,
    CATALOG,
    IRREGULAR_ABBRS,
    REGULAR_ABBRS,
    SCALABLE_ABBRS,
    get_spec,
)
from repro.workloads.microbench import MicrobenchWorkload, microbench_spec
from repro.workloads.patterns import PATTERNS, get_pattern
from repro.workloads.trace_io import ReplayWorkload, load_trace, save_trace

__all__ = [
    "ReplayWorkload",
    "load_trace",
    "save_trace",
    "IRREGULAR",
    "REGULAR",
    "TraceWorkload",
    "WorkloadSpec",
    "ALL_ABBRS",
    "CATALOG",
    "IRREGULAR_ABBRS",
    "REGULAR_ABBRS",
    "SCALABLE_ABBRS",
    "get_spec",
    "MicrobenchWorkload",
    "microbench_spec",
    "PATTERNS",
    "get_pattern",
]
