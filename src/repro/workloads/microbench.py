"""The Figure 4 microbenchmark: tunable concurrent page walks.

The paper probes a real A2000 with warps of one active thread, each
touching a distinct cache line (one per page), and measures how memory
latency grows with the number of concurrent page walks — the signature
of PTW contention.  This module builds the same experiment for the
simulator: ``concurrency`` single-lane warps, each cycling through its
own set of far-apart pages so every access needs a fresh walk.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.workloads.base import IRREGULAR, TraceWorkload, WorkloadSpec


def microbench_spec(
    concurrency: int, *, warps_per_sm: int = 1, accesses_per_warp: int = 8
) -> WorkloadSpec:
    """One warp per concurrent walk; every access touches a new page."""
    if concurrency < 1:
        raise ValueError("need at least one concurrent walk")
    return WorkloadSpec(
        name=f"microbench_{concurrency}",
        abbr=f"ubench{concurrency}",
        category=IRREGULAR,
        footprint_mb=2048,
        pattern="strided",
        # One lane; each access strides just past a page so no TLB reuse.
        pattern_params={"stride_lines": 512 + 7, "lanes": 1},
        compute_per_mem=2,
        warps_per_sm=warps_per_sm,
        mem_insts_per_warp=accesses_per_warp,
        paper_mpki=0.0,
    )


class MicrobenchWorkload(TraceWorkload):
    """Spread ``concurrency`` single-thread warps over the SMs."""

    def __init__(self, config: GPUConfig, concurrency: int, **kwargs) -> None:
        self.concurrency = concurrency
        warps_per_sm = -(-concurrency // config.num_sms)
        spec = microbench_spec(concurrency, warps_per_sm=warps_per_sm)
        super().__init__(spec, config, **kwargs)

    def _generate(self):  # type: ignore[override]
        traces = super()._generate()
        # Keep exactly `concurrency` warps, interleaved across SMs so
        # pressure spreads like the paper's one-warp-per-block launch.
        num_sms = self.config.num_sms
        for sm_id, sm_traces in enumerate(traces):
            kept = [
                trace
                for warp_index, trace in enumerate(sm_traces)
                if warp_index * num_sms + sm_id < self.concurrency
            ]
            traces[sm_id] = kept
        return traces

    @property
    def active_warps(self) -> int:
        return sum(len(sm_traces) for sm_traces in self.traces)
