"""The Table 4 benchmark catalog.

All 20 workloads of the paper's evaluation, with footprints from
Table 4 and access patterns/compute intensities chosen so the measured
L2 TLB MPKI reproduces the paper's *ordering* (spmv >> gesv > gups >
sy2k > xsb > nw > sssp > dc > bfs > gc > bc > st2d >> regular suite).
``paper_mpki`` / ``paper_required_ptws`` carry the published values for
side-by-side reporting in the Table 4 bench.
"""

from __future__ import annotations

from repro.workloads.base import IRREGULAR, REGULAR, WorkloadSpec

_SPECS = [
    # ----------------------------- irregular --------------------------
    WorkloadSpec(
        name="betweenness_centrality",
        abbr="bc",
        category=IRREGULAR,
        footprint_mb=1194,
        pattern="power_law",
        pattern_params={"alpha": 1.5, "sequential_fraction": 0.36},
        compute_per_mem=320,
        paper_mpki=9.0819,
        paper_required_ptws=256,
    ),
    WorkloadSpec(
        name="degree_centrality",
        abbr="dc",
        category=IRREGULAR,
        footprint_mb=1138,
        pattern="power_law",
        pattern_params={"alpha": 1.42, "sequential_fraction": 0.22},
        compute_per_mem=150,
        paper_mpki=26.17,
        paper_required_ptws=512,
    ),
    WorkloadSpec(
        name="sssp",
        abbr="sssp",
        category=IRREGULAR,
        footprint_mb=1788,
        pattern="power_law",
        pattern_params={"alpha": 1.4, "sequential_fraction": 0.22},
        compute_per_mem=130,
        paper_mpki=30.2808,
        paper_required_ptws=512,
    ),
    WorkloadSpec(
        name="graph_coloring",
        abbr="gc",
        category=IRREGULAR,
        footprint_mb=1294,
        pattern="power_law",
        pattern_params={"alpha": 1.44, "sequential_fraction": 0.26},
        compute_per_mem=240,
        paper_mpki=13.7029,
        paper_required_ptws=256,
    ),
    WorkloadSpec(
        name="needleman_wunsch",
        abbr="nw",
        category=IRREGULAR,
        footprint_mb=612,
        pattern="diagonal_wavefront",
        pattern_params={"matrix_rows": 24576},
        compute_per_mem=110,
        mem_insts_per_warp=6,
        paper_mpki=44.5329,
        paper_required_ptws=512,
    ),
    WorkloadSpec(
        name="stencil2d",
        abbr="st2d",
        category=IRREGULAR,
        footprint_mb=612,
        pattern="stencil",
        pattern_params={"halo": 1, "row_stride_lines": 8192, "step": 192},
        compute_per_mem=280,
        paper_mpki=4.8493,
        paper_required_ptws=256,
    ),
    WorkloadSpec(
        name="xsbench",
        abbr="xsb",
        category=IRREGULAR,
        footprint_mb=360,
        pattern="table_lookup",
        pattern_params={"tables": 64},
        compute_per_mem=430,
        mem_insts_per_warp=6,
        paper_mpki=57.9595,
        paper_required_ptws=512,
    ),
    WorkloadSpec(
        name="bfs",
        abbr="bfs",
        category=IRREGULAR,
        footprint_mb=1396,
        pattern="power_law",
        pattern_params={"alpha": 1.39, "sequential_fraction": 0.22},
        compute_per_mem=190,
        paper_mpki=22.1519,
        paper_required_ptws=256,
    ),
    WorkloadSpec(
        name="syr2k",
        abbr="sy2k",
        category=IRREGULAR,
        footprint_mb=192,
        pattern="strided",
        pattern_params={"stride_lines": 1664},
        compute_per_mem=160,
        paper_mpki=120.696,
        paper_required_ptws=1024,
    ),
    WorkloadSpec(
        name="spmv",
        abbr="spmv",
        category=IRREGULAR,
        footprint_mb=288,
        pattern="sparse_gather",
        pattern_params={"row_fraction": 0.125},
        compute_per_mem=12,
        mem_insts_per_warp=6,
        paper_mpki=2517.196,
        paper_required_ptws=512,
    ),
    WorkloadSpec(
        name="gesummv",
        abbr="gesv",
        category=IRREGULAR,
        footprint_mb=226,
        pattern="strided",
        pattern_params={"stride_lines": 1280},
        compute_per_mem=22,
        mem_insts_per_warp=6,
        paper_mpki=1320.543,
        paper_required_ptws=512,
    ),
    WorkloadSpec(
        name="gups",
        abbr="gups",
        category=IRREGULAR,
        footprint_mb=308,
        pattern="uniform_random",
        pattern_params={},
        compute_per_mem=95,
        mem_insts_per_warp=6,
        paper_mpki=318.8202,
        paper_required_ptws=1024,
    ),
    # ------------------------------ regular ---------------------------
    WorkloadSpec(
        name="connected_components",
        abbr="cc",
        category=REGULAR,
        footprint_mb=2306,
        pattern="hot_cold",
        pattern_params={"cold_fraction": 0.001, "lanes": 8},
        compute_per_mem=60,
        mem_insts_per_warp=48,
        paper_mpki=0.1309,
    ),
    WorkloadSpec(
        name="kcore",
        abbr="kc",
        category=REGULAR,
        footprint_mb=1152,
        pattern="hot_cold",
        pattern_params={"cold_fraction": 0.004, "lanes": 8},
        compute_per_mem=55,
        mem_insts_per_warp=48,
        paper_mpki=0.5271,
    ),
    WorkloadSpec(
        name="2dconv",
        abbr="2dc",
        category=REGULAR,
        footprint_mb=1120,
        pattern="streaming",
        pattern_params={"lines_per_inst": 4},
        compute_per_mem=45,
        mem_insts_per_warp=48,
        paper_mpki=0.0767,
    ),
    WorkloadSpec(
        name="fft",
        abbr="fft",
        category=REGULAR,
        footprint_mb=610,
        pattern="streaming",
        pattern_params={"lines_per_inst": 8},
        compute_per_mem=60,
        mem_insts_per_warp=48,
        paper_mpki=0.077,
    ),
    WorkloadSpec(
        name="histogram",
        abbr="histo",
        category=REGULAR,
        footprint_mb=1124,
        pattern="hot_cold",
        pattern_params={"cold_fraction": 0.001, "lanes": 4},
        compute_per_mem=40,
        mem_insts_per_warp=48,
        paper_mpki=0.0976,
    ),
    WorkloadSpec(
        name="reduction",
        abbr="red",
        category=REGULAR,
        footprint_mb=1124,
        pattern="streaming",
        pattern_params={"lines_per_inst": 8},
        compute_per_mem=30,
        mem_insts_per_warp=48,
        paper_mpki=0.3383,
    ),
    WorkloadSpec(
        name="scan",
        abbr="scan",
        category=REGULAR,
        footprint_mb=516,
        pattern="streaming",
        pattern_params={"lines_per_inst": 4},
        compute_per_mem=30,
        mem_insts_per_warp=48,
        paper_mpki=0.1458,
    ),
    WorkloadSpec(
        name="gemm",
        abbr="gemm",
        category=REGULAR,
        footprint_mb=288,
        pattern="streaming",
        pattern_params={"lines_per_inst": 4},
        compute_per_mem=80,
        mem_insts_per_warp=48,
        paper_mpki=0.0614,
    ),
]

CATALOG: dict[str, WorkloadSpec] = {spec.abbr: spec for spec in _SPECS}

#: Paper ordering for result tables.
ALL_ABBRS = [spec.abbr for spec in _SPECS]
IRREGULAR_ABBRS = [s.abbr for s in _SPECS if s.category == IRREGULAR]
REGULAR_ABBRS = [s.abbr for s in _SPECS if s.category == REGULAR]

#: The 10 workloads whose footprints scale beyond the 2MB-page L2 TLB
#: coverage (used for Figures 6 and 25).
SCALABLE_ABBRS = ["sssp", "nw", "xsb", "bfs", "sy2k", "spmv", "gesv", "gups", "dc", "gc"]


def get_spec(abbr: str) -> WorkloadSpec:
    try:
        return CATALOG[abbr]
    except KeyError:
        raise ValueError(f"unknown benchmark {abbr!r}; known: {ALL_ABBRS}") from None
