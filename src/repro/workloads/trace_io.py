"""Trace serialisation: save and replay workload traces.

Synthetic traces are deterministic per benchmark name, but users porting
real application traces (e.g. from NVBit or a binary instrumenter) need
a stable on-disk format.  The format is JSON:

.. code-block:: json

    {
      "version": 1,
      "spec": { ...WorkloadSpec fields... },
      "page_size": 65536,
      "traces": [ [ [["c", 40], ["m", [1, 2, 513]]], ... ], ... ]
    }

``traces[sm][warp]`` is a list of instructions; memory instructions
carry virtual line indices (VA / 128).  :func:`load_trace` rebuilds a
fully premapped :class:`~repro.workloads.base.TraceWorkload` for any
GPU configuration whose page size divides the recorded one's line space
(traces are page-size independent by construction).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.config import GPUConfig
from repro.workloads.base import TraceWorkload, WorkloadSpec

FORMAT_VERSION = 1


def save_trace(workload: TraceWorkload, path: str | Path) -> Path:
    """Write a workload's spec and traces to ``path`` (JSON)."""
    path = Path(path)
    payload = {
        "version": FORMAT_VERSION,
        "spec": asdict(workload.spec),
        "page_size": workload.page_size,
        "footprint_lines": workload.footprint_lines,
        "traces": [
            [[list(_encode(inst)) for inst in warp] for warp in sm]
            for sm in workload.traces
        ],
    }
    path.write_text(json.dumps(payload))
    return path


def _encode(inst: tuple) -> tuple:
    kind, payload = inst
    if kind == "m":
        return kind, list(payload)
    return kind, payload


class ReplayWorkload(TraceWorkload):
    """A workload reconstructed from a saved trace file."""

    def __init__(self, spec: WorkloadSpec, config: GPUConfig, traces) -> None:
        self._loaded_traces = traces
        super().__init__(spec, config)

    def _generate(self):  # type: ignore[override]
        traces = []
        for sm in self._loaded_traces:
            sm_traces = []
            for warp in sm:
                sm_traces.append(
                    [
                        ("m", tuple(payload)) if kind == "m" else ("c", payload)
                        for kind, payload in warp
                    ]
                )
            traces.append(sm_traces)
        return traces


def load_trace(path: str | Path, config: GPUConfig) -> ReplayWorkload:
    """Rebuild a workload (with a fresh premapped address space)."""
    payload = json.loads(Path(path).read_text())
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {payload.get('version')}")
    spec = WorkloadSpec(**payload["spec"])
    traces = payload["traces"]
    if len(traces) != config.num_sms:
        raise ValueError(
            f"trace recorded for {len(traces)} SMs, config has {config.num_sms}"
        )
    return ReplayWorkload(spec, config, traces)
