"""Synthetic memory-access pattern generators.

Each generator produces, for one warp, an ``(instructions, lanes)``
array of *virtual line indices* (VA / 128B).  Patterns are defined in
line space so they are independent of page size: the same trace is
replayed under 64KB and 2MB pages (the Section 6.3 large-page study).

The generators mirror the access behaviours of the paper's benchmark
suites (Figure 3): streaming/blocked kernels, large-stride column-major
algebra, stencils, power-law graph traversals, sparse gathers, and
uniform-random GUPS-style updates.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

#: 64KB page / 128B line.
LINES_PER_PAGE_64K = 512

PatternFn = Callable[..., np.ndarray]


def _warp_chunk(warp_slot: int, num_warps: int, footprint_lines: int) -> tuple[int, int]:
    """Contiguous slice of the footprint owned by one warp."""
    chunk = max(1, footprint_lines // num_warps)
    base = (warp_slot * chunk) % footprint_lines
    return base, chunk


def streaming(
    rng: np.random.Generator,
    warp_slot: int,
    num_warps: int,
    n_inst: int,
    footprint_lines: int,
    *,
    lines_per_inst: int = 4,
    warps_per_chunk: int = 4,
) -> np.ndarray:
    """Coalesced sequential accesses: the 2dc/fft/red/scan/gemm shape.

    Every instruction touches a handful of consecutive lines; groups of
    ``warps_per_chunk`` warps tile the same contiguous chunk (as thread
    blocks covering one image row do), so pages change rarely and the
    TLBs almost always hit.
    """
    group = warp_slot // warps_per_chunk
    num_groups = max(1, num_warps // warps_per_chunk)
    base, chunk = _warp_chunk(group, num_groups, footprint_lines)
    lane_offset = (warp_slot % warps_per_chunk) * lines_per_inst
    starts = base + lane_offset + (
        np.arange(n_inst) * lines_per_inst * warps_per_chunk
    ) % max(1, chunk)
    lanes = starts[:, None] + np.arange(lines_per_inst)[None, :]
    return lanes % footprint_lines


def strided(
    rng: np.random.Generator,
    warp_slot: int,
    num_warps: int,
    n_inst: int,
    footprint_lines: int,
    *,
    stride_lines: int = LINES_PER_PAGE_64K,
    lanes: int = 32,
) -> np.ndarray:
    """Large-stride column-major accesses: the sy2k/gesv shape.

    Each lane lands a full stride apart, so one warp instruction can
    touch up to 32 distinct pages, sweeping the footprint cyclically —
    the pattern that thrashes TLB reach no matter how large the page.
    """
    base, _ = _warp_chunk(warp_slot, num_warps, footprint_lines)
    index = np.arange(n_inst)[:, None] * lanes + np.arange(lanes)[None, :]
    return (base + index * stride_lines) % footprint_lines


def uniform_random(
    rng: np.random.Generator,
    warp_slot: int,
    num_warps: int,
    n_inst: int,
    footprint_lines: int,
    *,
    lanes: int = 32,
) -> np.ndarray:
    """GUPS-style random updates: every lane anywhere in the footprint."""
    return rng.integers(0, footprint_lines, size=(n_inst, lanes), dtype=np.int64)


def power_law(
    rng: np.random.Generator,
    warp_slot: int,
    num_warps: int,
    n_inst: int,
    footprint_lines: int,
    *,
    alpha: float = 1.4,
    sequential_fraction: float = 0.25,
    lanes: int = 32,
) -> np.ndarray:
    """Graph-traversal accesses (bc/dc/sssp/gc/bfs): power-law vertices.

    A fraction of lanes stream the frontier (sequential); the rest
    chase neighbour lists whose popularity is Zipf-distributed.  A
    fixed multiplicative hash spreads hot vertex IDs across the
    footprint so hotness does not imply physical adjacency.
    """
    ranks = rng.zipf(alpha, size=(n_inst, lanes)).astype(np.int64)
    spread = (ranks * 0x9E3779B1) % footprint_lines
    n_seq = max(0, min(lanes, int(lanes * sequential_fraction)))
    if n_seq:
        base, chunk = _warp_chunk(warp_slot, num_warps, footprint_lines)
        seq = base + (np.arange(n_inst)[:, None] + np.arange(n_seq)[None, :]) % max(
            1, chunk
        )
        spread[:, :n_seq] = seq % footprint_lines
    return spread


def sparse_gather(
    rng: np.random.Generator,
    warp_slot: int,
    num_warps: int,
    n_inst: int,
    footprint_lines: int,
    *,
    row_fraction: float = 0.25,
    lanes: int = 32,
) -> np.ndarray:
    """SpMV-style: streamed row pointers plus scattered column gathers.

    The gather lanes are uniform over the matrix, producing the extreme
    per-instruction page divergence that gives spmv the highest MPKI in
    Table 4.
    """
    gathers = rng.integers(0, footprint_lines, size=(n_inst, lanes), dtype=np.int64)
    n_rows = max(0, min(lanes, int(lanes * row_fraction)))
    if n_rows:
        base, chunk = _warp_chunk(warp_slot, num_warps, footprint_lines)
        rows = base + (np.arange(n_inst)[:, None] * n_rows + np.arange(n_rows)[None, :]) % max(1, chunk)
        gathers[:, :n_rows] = rows % footprint_lines
    return gathers


def stencil(
    rng: np.random.Generator,
    warp_slot: int,
    num_warps: int,
    n_inst: int,
    footprint_lines: int,
    *,
    row_stride_lines: int = 4 * LINES_PER_PAGE_64K,
    halo: int = 1,
    step: int = 8,
    lanes: int = 32,
) -> np.ndarray:
    """2D stencil sweeps (st2d): a few rows per instruction, rows far apart."""
    base, chunk = _warp_chunk(warp_slot, num_warps, footprint_lines)
    center = base + (np.arange(n_inst) * step) % max(1, chunk)
    rows = np.arange(-halo, halo + 1) * row_stride_lines
    per_row = max(1, lanes // len(rows))
    offsets = np.concatenate(
        [row + np.arange(per_row) for row in rows]
    )[:lanes]
    return (center[:, None] + offsets[None, :]) % footprint_lines


def diagonal_wavefront(
    rng: np.random.Generator,
    warp_slot: int,
    num_warps: int,
    n_inst: int,
    footprint_lines: int,
    *,
    matrix_rows: int = 2048,
    lanes: int = 32,
) -> np.ndarray:
    """Needleman-Wunsch anti-diagonal sweeps (nw).

    Lanes walk an anti-diagonal of a 2D score matrix: consecutive lanes
    are one row apart, i.e. a full matrix-row stride apart in memory —
    scattered across many pages, with the diagonal advancing each step.
    """
    row_lines = max(1, footprint_lines // matrix_rows)
    diag = warp_slot * lanes + np.arange(n_inst)[:, None]
    lane = np.arange(lanes)[None, :]
    return ((diag + lane) * row_lines + (diag - lane)) % footprint_lines


def table_lookup(
    rng: np.random.Generator,
    warp_slot: int,
    num_warps: int,
    n_inst: int,
    footprint_lines: int,
    *,
    tables: int = 64,
    lanes: int = 32,
) -> np.ndarray:
    """XSBench-style cross-section lookups: random table, random offset.

    Divergent binary-search-like probes over many nuclide grids; less
    skewed than a Zipf graph but far beyond TLB reach.
    """
    table_size = max(1, footprint_lines // tables)
    table = rng.integers(0, tables, size=(n_inst, lanes), dtype=np.int64)
    offset = rng.integers(0, table_size, size=(n_inst, lanes), dtype=np.int64)
    return table * table_size + offset


def hot_cold(
    rng: np.random.Generator,
    warp_slot: int,
    num_warps: int,
    n_inst: int,
    footprint_lines: int,
    *,
    hot_lines: int = 64 * LINES_PER_PAGE_64K,
    cold_fraction: float = 0.02,
    lanes: int = 4,
) -> np.ndarray:
    """Mostly-resident working set with rare cold excursions (cc/kc/histo).

    The hot region fits comfortably in TLB reach; a small fraction of
    lanes touch cold pages, giving the sub-1 MPKI of the paper's
    'regular' graph kernels.
    """
    hot_span = min(hot_lines, footprint_lines)
    base, _ = _warp_chunk(warp_slot, num_warps, hot_span)
    hot = (base + (np.arange(n_inst)[:, None] + np.arange(lanes)[None, :])) % hot_span
    cold_mask = rng.random(size=(n_inst, lanes)) < cold_fraction
    cold = rng.integers(0, footprint_lines, size=(n_inst, lanes), dtype=np.int64)
    return np.where(cold_mask, cold, hot)


PATTERNS: dict[str, PatternFn] = {
    "streaming": streaming,
    "strided": strided,
    "uniform_random": uniform_random,
    "power_law": power_law,
    "sparse_gather": sparse_gather,
    "stencil": stencil,
    "diagonal_wavefront": diagonal_wavefront,
    "table_lookup": table_lookup,
    "hot_cold": hot_cold,
}


def get_pattern(name: str) -> PatternFn:
    try:
        return PATTERNS[name]
    except KeyError:
        raise ValueError(f"unknown access pattern {name!r}") from None
