"""Workload specification and trace construction.

A :class:`WorkloadSpec` captures everything Table 4 records about a
benchmark — footprint, access pattern, divergence, compute intensity —
plus the paper's measured MPKI and required-PTW class for comparison.
:class:`TraceWorkload` turns a spec into concrete per-warp instruction
traces and a pre-populated address space, deterministic per benchmark
name so every configuration replays the identical workload.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.config import MB, GPUConfig
from repro.gpu.warp import LINE_BYTES
from repro.pagetable.space import AddressSpace
from repro.workloads.patterns import get_pattern

IRREGULAR = "irregular"
REGULAR = "regular"


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one benchmark (one Table 4 row)."""

    name: str
    abbr: str
    category: str
    #: Memory footprint in MB (Table 4).
    footprint_mb: int
    #: Access pattern generator name (see ``repro.workloads.patterns``).
    pattern: str
    #: Pattern keyword arguments.
    pattern_params: dict[str, Any] = field(default_factory=dict)
    #: Compute cycles issued between memory instructions.
    compute_per_mem: int = 40
    #: Concurrent warps per SM the kernel sustains.
    warps_per_sm: int = 8
    #: Memory instructions per warp at scale 1.0.
    mem_insts_per_warp: int = 8
    #: Paper-reported L2 TLB MPKI (Table 4), for shape comparison.
    paper_mpki: float = 0.0
    #: Paper-reported required number of PTWs (Table 4).
    paper_required_ptws: int = 32

    def __post_init__(self) -> None:
        if self.category not in (IRREGULAR, REGULAR):
            raise ValueError(f"category must be irregular/regular, got {self.category!r}")
        if self.footprint_mb <= 0:
            raise ValueError("footprint must be positive")

    @property
    def is_irregular(self) -> bool:
        return self.category == IRREGULAR

    def footprint_lines(self, footprint_scale: float = 1.0) -> int:
        return max(1, int(self.footprint_mb * footprint_scale) * MB // LINE_BYTES)


class TraceWorkload:
    """Concrete traces + address space for one (spec, config) pair."""

    def __init__(
        self,
        spec: WorkloadSpec,
        config: GPUConfig,
        *,
        scale: float = 1.0,
        footprint_scale: float = 1.0,
        seed: int | None = None,
        contiguous_frames: bool = False,
    ) -> None:
        self.spec = spec
        self.config = config
        self.page_size = config.page_table.page_size
        self._lines_per_page = self.page_size // LINE_BYTES
        base_seed = seed if seed is not None else zlib.crc32(spec.name.encode())
        #: The seed actually used, derived when ``seed=None`` — recorded
        #: in :class:`~repro.gpu.gpu.SimulationResult` so any run can be
        #: replayed exactly from its result metadata.
        self.effective_seed = base_seed
        self._rng = np.random.default_rng(base_seed)
        self.footprint_lines = spec.footprint_lines(footprint_scale)

        self.mem_insts_per_warp = max(1, round(spec.mem_insts_per_warp * scale))
        self.warps_per_sm = min(spec.warps_per_sm, config.max_warps_per_sm)
        self.traces = self._generate()
        # The hashed mirror (FS-HPT) is fixed-size, dimensioned to the
        # workload like the original design: ~4 slots per mapped page.
        touched = self._touched_pages()
        hashed_slots = max(1 << 10, 1 << (4 * max(1, touched)).bit_length())
        self.space = AddressSpace(
            config.page_table,
            with_hashed_table=True,
            hashed_slots=hashed_slots,
            # Contiguous allocation models an OS that preserves
            # virtual-to-physical contiguity (what TLB coalescing needs).
            shuffle_seed=None if contiguous_frames else 1234,
        )
        self._premap()

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------
    def _generate(self) -> list[list[list[tuple]]]:
        pattern = get_pattern(self.spec.pattern)
        num_warps_total = self.config.num_sms * self.warps_per_sm
        traces: list[list[list[tuple]]] = []
        slot = 0
        for _sm in range(self.config.num_sms):
            sm_traces: list[list[tuple]] = []
            for _warp in range(self.warps_per_sm):
                lanes = pattern(
                    self._rng,
                    slot,
                    num_warps_total,
                    self.mem_insts_per_warp,
                    self.footprint_lines,
                    **self.spec.pattern_params,
                )
                sm_traces.append(self._to_instructions(lanes))
                slot += 1
            traces.append(sm_traces)
        return traces

    def _to_instructions(self, lane_lines: np.ndarray) -> list[tuple]:
        instructions: list[tuple] = []
        compute = self.spec.compute_per_mem
        for row in lane_lines:
            if compute:
                instructions.append(("c", compute))
            vlines = tuple(sorted(set(int(v) for v in row)))
            instructions.append(("m", vlines))
        return instructions

    def _touched_pages(self) -> int:
        return len(self._page_set())

    def _page_set(self) -> set[int]:
        pages: set[int] = set()
        lpp = self._lines_per_page
        for sm_traces in self.traces:
            for warp_trace in sm_traces:
                for inst in warp_trace:
                    if inst[0] == "m":
                        pages.update(v // lpp for v in inst[1])
        return pages

    def _premap(self) -> None:
        """Driver-style prefill: map every page the trace touches."""
        pages = self._page_set()
        for vpn in sorted(pages):
            self.space.ensure_mapped(vpn)
        self.touched_pages = len(pages)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def touched_page_set(self) -> set[int]:
        """Every VPN the traces touch (fault injectors pick targets here)."""
        return self._page_set()

    @property
    def total_mem_instructions(self) -> int:
        return self.config.num_sms * self.warps_per_sm * self.mem_insts_per_warp

    @property
    def footprint_pages(self) -> int:
        return -(-self.footprint_lines * LINE_BYTES // self.page_size)

    def describe(self) -> str:
        return (
            f"{self.spec.abbr}: {self.spec.category}, "
            f"{self.spec.footprint_mb} MB footprint, "
            f"{self.touched_pages} pages touched, "
            f"{self.total_mem_instructions} memory instructions"
        )
