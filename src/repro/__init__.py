"""SoftWalker reproduction: software page table walks for irregular GPUs.

A trace-driven GPU virtual-memory simulator reproducing *SoftWalker:
Supporting Software Page Table Walk for Irregular GPU Applications*
(MICRO 2025).  Public entry points:

>>> from repro import baseline_config, softwalker_config, run_workload
>>> base = run_workload(baseline_config(), "gups", scale=0.2)
>>> soft = run_workload(softwalker_config(), "gups", scale=0.2)
>>> soft.speedup_over(base) > 1
True
"""

from repro.config import (
    DEFAULT_CONFIGS,
    PAGE_SIZE_2M,
    PAGE_SIZE_64K,
    ConfigRegistry,
    DistributorPolicy,
    GPUConfig,
    avatar_config,
    baseline_config,
    fshpt_config,
    ideal_config,
    nha_config,
    softwalker_config,
)
from repro.gpu.gpu import GPUSimulator, SimulationResult, SimulationTruncated
from repro.harness.pool import SweepPoint, make_point, matrix_points
from repro.analysis import ResultSet, analyze, diff_resultsets
from repro.harness.runner import (
    Runner,
    build_workload,
    default_runner,
    run_workload,
    speedups,
)
from repro.harness.store import ResultStore
from repro.harness.supervised import (
    SupervisedReport,
    SupervisionPolicy,
    AttemptAbandoned,
    WatchdogTimeout,
    run_supervised,
)
from repro.obs import (
    MetricsRegistry,
    MetricsSampler,
    Observability,
    TraceRecorder,
    validate_chrome_trace,
)
from repro.resilience import (
    Checkpoint,
    CheckpointError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InvariantChecker,
    InvariantViolation,
    default_chaos_plan,
)
from repro.workloads.base import TraceWorkload, WorkloadSpec
from repro.workloads.catalog import (
    ALL_ABBRS,
    CATALOG,
    IRREGULAR_ABBRS,
    REGULAR_ABBRS,
    get_spec,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIGS",
    "PAGE_SIZE_2M",
    "PAGE_SIZE_64K",
    "ConfigRegistry",
    "DistributorPolicy",
    "GPUConfig",
    "avatar_config",
    "baseline_config",
    "fshpt_config",
    "ideal_config",
    "nha_config",
    "softwalker_config",
    "GPUSimulator",
    "SimulationResult",
    "SimulationTruncated",
    "MetricsRegistry",
    "MetricsSampler",
    "Observability",
    "TraceRecorder",
    "validate_chrome_trace",
    "ResultSet",
    "analyze",
    "diff_resultsets",
    "ResultStore",
    "Runner",
    "SweepPoint",
    "build_workload",
    "default_runner",
    "make_point",
    "matrix_points",
    "run_workload",
    "speedups",
    "SupervisedReport",
    "SupervisionPolicy",
    "AttemptAbandoned",
    "WatchdogTimeout",
    "run_supervised",
    "Checkpoint",
    "CheckpointError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InvariantChecker",
    "InvariantViolation",
    "default_chaos_plan",
    "TraceWorkload",
    "WorkloadSpec",
    "ALL_ABBRS",
    "CATALOG",
    "IRREGULAR_ABBRS",
    "REGULAR_ABBRS",
    "get_spec",
]


def __getattr__(name: str):
    if name == "run_matrix":
        raise ImportError(
            "repro.run_matrix() was removed after its deprecation cycle; "
            "use repro.default_runner().run_matrix(...) (or a Runner "
            "instance) instead"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
