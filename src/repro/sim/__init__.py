"""Discrete-event simulation core: engine, clock, and statistics."""

from repro.sim.batched import BatchedEngine
from repro.sim.engine import Engine, SimulationError, batch_dispatch
from repro.sim.stats import Counter, Histogram, LatencyTracker, StatsRegistry

__all__ = [
    "BatchedEngine",
    "Engine",
    "SimulationError",
    "batch_dispatch",
    "Counter",
    "Histogram",
    "LatencyTracker",
    "StatsRegistry",
]
