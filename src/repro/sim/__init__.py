"""Discrete-event simulation core: engine, clock, and statistics."""

from repro.sim.engine import Engine, SimulationError
from repro.sim.stats import Counter, Histogram, LatencyTracker, StatsRegistry

__all__ = [
    "Engine",
    "SimulationError",
    "Counter",
    "Histogram",
    "LatencyTracker",
    "StatsRegistry",
]
