"""Deterministic discrete-event simulation engine.

The engine is the heartbeat of every model in this package.  Components
schedule callbacks at absolute or relative times measured in GPU core
cycles; the engine pops events in (time, insertion-order) order so that
simulations are fully deterministic and reproducible.

The engine is intentionally minimal: a binary heap of events plus a clock.
All higher-level timing behaviour (queueing, pipelining, bandwidth) is
expressed by the components themselves.

Two observability affordances live here because only the event loop can
provide them:

* **Daemon events** (``schedule_daemon``) — housekeeping callbacks such
  as the metrics sampler.  They fire interleaved with real work but are
  dropped once only daemons remain, so instrumentation can never extend
  a simulation's final cycle count.
* **Callback profiling** (``enable_profiling``) — accumulates wall-clock
  time per callback site, turning the engine into its own profiler for
  finding simulator hot spots.
* **Audit hook** (``attach_audit``) — a callback invoked every N
  processed events, used by the resilience layer's invariant checker.
  Unlike daemons it is event-indexed rather than time-indexed, so audits
  track simulation *progress* even when the clock jumps.  Detached, it
  costs one attribute load per event.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the engine is used incorrectly (e.g. scheduling in the past)."""


def batch_dispatch(handler_name: str):
    """Opt a bound-method event callback into batched dispatch.

    Engines that understand the marker (``repro.sim.batched``) group
    adjacent same-cycle events aimed at the *same bound method* and call
    ``getattr(instance, handler_name)(args_list)`` once instead of N
    per-event calls.  The handler must be observably equivalent to::

        for args in args_list:
            method(*args)

    including the order of side effects — the heap engine ignores the
    marker entirely and golden fingerprints pin the equivalence, so a
    handler that reorders work shows up as fingerprint drift.
    """

    def mark(fn):
        fn.__batch_handler__ = handler_name
        return fn

    return mark


class Engine:
    """A discrete-event simulator with a cycle-granularity clock.

    Events scheduled for the same cycle fire in the order they were
    scheduled, which keeps runs deterministic regardless of heap internals.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[
            tuple[int, int, Callable[..., None], tuple[Any, ...], bool]
        ] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._daemons_pending: int = 0
        #: True when the last ``run`` stopped at ``max_events`` with real
        #: work still queued (the safety valve fired).
        self.truncated: bool = False
        #: qualname -> [calls, wall seconds]; None when profiling is off.
        self._profile: dict[str, list] | None = None
        #: Audit hook state; None when no auditor is attached.
        self._audit: Callable[[], None] | None = None
        self._audit_every: int = 0
        self._audit_countdown: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        self.schedule_at(self.now + int(delay), callback, *args)

    def schedule_at(self, when: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute cycle ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at cycle {when}, current cycle is {self.now}"
            )
        heapq.heappush(self._queue, (when, self._seq, callback, args, False))
        self._seq += 1

    def schedule_daemon(
        self, delay: int, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule a housekeeping callback ``delay`` cycles from now.

        Daemon events fire like ordinary events while real work remains,
        but ``run`` discards them once they are all that is left — the
        clock never advances for a daemon alone.  Daemon callbacks must
        only observe state (schedule more daemons at most), never drive
        the simulation.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        heapq.heappush(
            self._queue, (self.now + int(delay), self._seq, callback, args, True)
        )
        self._seq += 1
        self._daemons_pending += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Drain the event queue.

        Args:
            until: stop once the clock would pass this cycle (events at
                exactly ``until`` still execute).
            max_events: safety valve against runaway simulations.  When
                it fires with real work still queued, ``truncated`` is
                set so callers can distinguish "finished" from "gave up".

        Returns:
            The final simulation time.
        """
        self.truncated = False
        processed = 0
        profile = self._profile
        while self._queue:
            if max_events is not None and processed >= max_events:
                # Checked at loop top so ``max_events=0`` processes
                # nothing and the tally can never leak across runs.
                self.truncated = self.real_pending > 0
                break
            if self._daemons_pending == len(self._queue):
                # Only housekeeping left: drop it without moving the clock.
                self._queue.clear()
                self._daemons_pending = 0
                break
            when, _seq, callback, args, daemon = self._queue[0]
            if until is not None and when > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            if daemon:
                self._daemons_pending -= 1
            self.now = when
            if profile is not None:
                # Resolve the site key before the timer starts (name
                # lookup must not bill the callback) and touch the dict
                # once on the hot path, so profiled runs distort the
                # numbers as little as possible.
                key = getattr(callback, "__qualname__", None)
                if key is None:
                    key = repr(callback)
                started = time.perf_counter()
                callback(*args)
                elapsed = time.perf_counter() - started
                try:
                    cell = profile[key]
                except KeyError:
                    profile[key] = [1, elapsed]
                else:
                    cell[0] += 1
                    cell[1] += elapsed
            else:
                callback(*args)
            processed += 1
            self._events_processed += 1
            audit = self._audit
            if audit is not None:
                self._audit_countdown -= 1
                if self._audit_countdown <= 0:
                    # Reset before the call so an auditor that raises
                    # (and is caught by a supervisor that resumes the
                    # run) does not re-fire on the very next event.
                    self._audit_countdown = self._audit_every
                    audit()
        return self.now

    def step(self) -> bool:
        """Execute a single event.  Returns False when the queue is empty."""
        if not self._queue:
            return False
        when, _seq, callback, args, daemon = heapq.heappop(self._queue)
        if daemon:
            self._daemons_pending -= 1
        self.now = when
        callback(*args)
        self._events_processed += 1
        return True

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------
    def attach_audit(self, every: int, callback: Callable[[], None]) -> None:
        """Invoke ``callback()`` after every ``every`` processed events.

        One auditor at a time; attaching replaces the previous one.  The
        auditor runs between events, so it always observes a consistent
        post-callback machine state.  An exception it raises propagates
        out of ``run`` with the engine left resumable (the triggering
        event has fully executed).
        """
        if every < 1:
            raise SimulationError(f"audit interval must be >= 1, got {every}")
        self._audit = callback
        self._audit_every = every
        self._audit_countdown = every

    def detach_audit(self) -> None:
        """Remove the audit hook (restores zero-cost event dispatch)."""
        self._audit = None
        self._audit_every = 0
        self._audit_countdown = 0

    @property
    def auditing(self) -> bool:
        return self._audit is not None

    # ------------------------------------------------------------------
    # Self-profiling
    # ------------------------------------------------------------------
    def enable_profiling(self) -> None:
        """Start accumulating wall-clock time per callback site."""
        if self._profile is None:
            self._profile = {}

    @property
    def profiling(self) -> bool:
        return self._profile is not None

    def profile_report(self, top: int | None = None) -> list[tuple[str, int, float]]:
        """(callback qualname, calls, wall seconds), hottest first."""
        if self._profile is None:
            return []
        rows = [
            (name, cell[0], cell[1]) for name, cell in self._profile.items()
        ]
        rows.sort(key=lambda row: row[2], reverse=True)
        return rows[:top] if top is not None else rows

    def profile_to_dict(self) -> dict:
        """JSON-safe profile export: ``{site: {"calls", "seconds"}}``.

        The wire form ``repro profile`` and the bench tooling persist;
        empty when profiling was never enabled.
        """
        if self._profile is None:
            return {}
        return {
            name: {"calls": cell[0], "seconds": cell[1]}
            for name, cell in self._profile.items()
        }

    def batch_counts(self) -> dict[str, int]:
        """site -> events delivered through a batch handler.

        The heap engine never batches, so this is always empty here;
        :class:`repro.sim.batched.BatchedEngine` overrides it.  The
        profile CLI uses it to label sites ``[batched xN]``.
        """
        return {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events waiting in the queue (daemons included)."""
        return len(self._queue)

    @property
    def real_pending(self) -> int:
        """Pending events that represent actual simulated work."""
        return len(self._queue) - self._daemons_pending

    @property
    def exhausted(self) -> bool:
        """True when no real work remains (the run drained naturally)."""
        return self.real_pending == 0

    @property
    def events_processed(self) -> int:
        """Total number of events executed since construction."""
        return self._events_processed

    def peek_time(self) -> int | None:
        """Time of the next event, or None when the queue is empty."""
        if not self._queue:
            return None
        return self._queue[0][0]
