"""Deterministic discrete-event simulation engine.

The engine is the heartbeat of every model in this package.  Components
schedule callbacks at absolute or relative times measured in GPU core
cycles; the engine pops events in (time, insertion-order) order so that
simulations are fully deterministic and reproducible.

The engine is intentionally minimal: a binary heap of events plus a clock.
All higher-level timing behaviour (queueing, pipelining, bandwidth) is
expressed by the components themselves.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the engine is used incorrectly (e.g. scheduling in the past)."""


class Engine:
    """A discrete-event simulator with a cycle-granularity clock.

    Events scheduled for the same cycle fire in the order they were
    scheduled, which keeps runs deterministic regardless of heap internals.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[tuple[int, int, Callable[..., None], tuple[Any, ...]]] = []
        self._seq: int = 0
        self._events_processed: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        self.schedule_at(self.now + int(delay), callback, *args)

    def schedule_at(self, when: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute cycle ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at cycle {when}, current cycle is {self.now}"
            )
        heapq.heappush(self._queue, (when, self._seq, callback, args))
        self._seq += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Drain the event queue.

        Args:
            until: stop once the clock would pass this cycle (events at
                exactly ``until`` still execute).
            max_events: safety valve against runaway simulations.

        Returns:
            The final simulation time.
        """
        processed = 0
        while self._queue:
            when, _seq, callback, args = self._queue[0]
            if until is not None and when > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            self.now = when
            callback(*args)
            processed += 1
            self._events_processed += 1
            if max_events is not None and processed >= max_events:
                break
        return self.now

    def step(self) -> bool:
        """Execute a single event.  Returns False when the queue is empty."""
        if not self._queue:
            return False
        when, _seq, callback, args = heapq.heappop(self._queue)
        self.now = when
        callback(*args)
        self._events_processed += 1
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total number of events executed since construction."""
        return self._events_processed

    def peek_time(self) -> int | None:
        """Time of the next event, or None when the queue is empty."""
        if not self._queue:
            return None
        return self._queue[0][0]
