"""Cycle-batched event engine: identical results, fewer dispatch round trips.

:class:`BatchedEngine` is a drop-in :class:`~repro.sim.engine.Engine`
replacement (registered as ``"batched"`` in
``repro.arch.registry.EVENT_ENGINES``).  Instead of popping one event at
a time and paying a full Python method call per event, it recognises
*runs* of adjacent events that share the same cycle and the same bound
method, and — when that method opted in via
:func:`~repro.sim.engine.batch_dispatch` — hands the whole run to the
method's batch handler as one ``args_list`` call.  The handler iterates
with hoisted locals, so the per-event attribute lookups and call frames
that dominate hot sites (``HardwareWalkBackend._finish``,
``TranslationService._l2_lookup``) are paid once per *batch*.

Equivalence contract (pinned by golden fingerprints and the parity
tests in ``tests/test_batched_engine.py``):

* **Order** — a batch is a maximal run of *adjacent* ``(time, seq)``
  events; events are delivered to the handler in exactly the order the
  heap engine would have popped them, and a run is never extended past
  an event with a different callback, owner, cycle, or daemon flag.
* **Daemon-drop** — daemons never join a batch, and since every event
  of an in-flight batch is real work, the "only housekeeping left"
  condition cannot become true mid-batch; it is re-checked at the loop
  top exactly like the heap engine.
* **Truncation and audit** — batches are capped so they can never cross
  a ``max_events`` boundary or an audit-every-N boundary: the audit
  hook and the truncated flag fire after exactly the same event index
  as under the heap engine.
* **Profiling** — a batch bills one timer interval to the site's
  qualname with ``calls += len(batch)``, so per-site call counts match
  the heap engine and self-time stays comparable (slightly cheaper,
  which is the point).  Batched delivery is additionally tallied in
  :meth:`batch_counts` so ``repro profile`` can label the site.

State layout is untouched — the queue is the same heap, and events are
only popped as they join the batch currently being dispatched, so at
every ``run()`` exit (and between events) the engine is bit-identical
to a heap engine that processed the same prefix.  ``step()``,
checkpoint deep-copies, and the resilience invariants therefore work
unchanged.  The one sharp edge: if a batch *handler* raises mid-batch,
the already-popped tail of the batch is lost — exactly why supervised
runs resume from a between-events checkpoint rather than the broken
simulator (covered by ``tests/test_batched_engine.py``).
"""

from __future__ import annotations

import heapq
import time

from repro.sim.engine import Engine

_HANDLER_ATTR = "__batch_handler__"


class BatchedEngine(Engine):
    """Engine that drains same-cycle, same-site event runs in one call."""

    def __init__(self) -> None:
        super().__init__()
        #: site qualname -> [batches dispatched, events delivered batched]
        self._batch_sites: dict[str, list] = {}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        self.truncated = False
        if (
            until is None
            and max_events is None
            and self._audit is None
            and self._profile is None
        ):
            # The common bench/run path: no boundaries to respect inside
            # a cycle, so the dispatch loop drops every per-event
            # feature check.
            return self._run_fast()
        return self._run_full(until, max_events)

    def _run_fast(self) -> int:
        """Dispatch loop with no until/max_events/audit/profiling."""
        queue = self._queue
        pop = heapq.heappop
        sites = self._batch_sites
        while queue:
            if self._daemons_pending == len(queue):
                queue.clear()
                self._daemons_pending = 0
                break
            when, _seq, callback, args, daemon = pop(queue)
            self.now = when
            if daemon:
                self._daemons_pending -= 1
                callback(*args)
                self._events_processed += 1
                continue
            func = getattr(callback, "__func__", None)
            handler_name = (
                getattr(func, _HANDLER_ATTR, None) if func is not None else None
            )
            if handler_name is None:
                callback(*args)
                self._events_processed += 1
                continue
            owner = callback.__self__
            batch = [args]
            append = batch.append
            while queue:
                head = queue[0]
                if (
                    head[0] != when
                    or head[4]
                    or getattr(head[2], "__func__", None) is not func
                    or head[2].__self__ is not owner
                ):
                    break
                pop(queue)
                append(head[3])
            n = len(batch)
            if n == 1:
                callback(*args)
            else:
                getattr(owner, handler_name)(batch)
                key = func.__qualname__
                try:
                    cell = sites[key]
                except KeyError:
                    sites[key] = [1, n]
                else:
                    cell[0] += 1
                    cell[1] += n
            self._events_processed += n
        return self.now

    def _run_full(self, until: int | None, max_events: int | None) -> int:
        """Dispatch loop honouring every per-event boundary the heap
        engine honours — batches are capped so audit/truncation fire at
        exactly the same event index."""
        queue = self._queue
        pop = heapq.heappop
        profile = self._profile
        sites = self._batch_sites
        processed = 0
        while queue:
            if max_events is not None and processed >= max_events:
                self.truncated = self.real_pending > 0
                break
            if self._daemons_pending == len(queue):
                queue.clear()
                self._daemons_pending = 0
                break
            when = queue[0][0]
            if until is not None and when > until:
                self.now = until
                break
            _w, _seq, callback, args, daemon = pop(queue)
            if daemon:
                self._daemons_pending -= 1
            self.now = when
            func = getattr(callback, "__func__", None)
            handler_name = None
            if not daemon and func is not None:
                handler_name = getattr(func, _HANDLER_ATTR, None)
            if handler_name is None:
                n = 1
                if profile is not None:
                    key = getattr(callback, "__qualname__", None)
                    if key is None:
                        key = repr(callback)
                    started = time.perf_counter()
                    callback(*args)
                    elapsed = time.perf_counter() - started
                    try:
                        cell = profile[key]
                    except KeyError:
                        profile[key] = [1, elapsed]
                    else:
                        cell[0] += 1
                        cell[1] += elapsed
                else:
                    callback(*args)
            else:
                # Cap the batch so it never crosses an audit or
                # max_events boundary.  Both caps are >= 1 at this
                # point: the loop top guarantees processed < max_events
                # and the audit countdown resets to >= 1 after firing.
                cap = self._audit_countdown if self._audit is not None else None
                if max_events is not None:
                    room = max_events - processed
                    cap = room if cap is None else min(cap, room)
                owner = callback.__self__
                batch = [args]
                append = batch.append
                while queue and (cap is None or len(batch) < cap):
                    head = queue[0]
                    if (
                        head[0] != when
                        or head[4]
                        or getattr(head[2], "__func__", None) is not func
                        or head[2].__self__ is not owner
                    ):
                        break
                    pop(queue)
                    append(head[3])
                n = len(batch)
                key = func.__qualname__
                if n == 1:
                    # Singleton run: dispatch exactly like the heap engine.
                    if profile is not None:
                        started = time.perf_counter()
                        callback(*args)
                        elapsed = time.perf_counter() - started
                        try:
                            cell = profile[key]
                        except KeyError:
                            profile[key] = [1, elapsed]
                        else:
                            cell[0] += 1
                            cell[1] += elapsed
                    else:
                        callback(*args)
                else:
                    target = getattr(owner, handler_name)
                    if profile is not None:
                        started = time.perf_counter()
                        target(batch)
                        elapsed = time.perf_counter() - started
                        try:
                            cell = profile[key]
                        except KeyError:
                            profile[key] = [n, elapsed]
                        else:
                            cell[0] += n
                            cell[1] += elapsed
                    else:
                        target(batch)
                    try:
                        scell = sites[key]
                    except KeyError:
                        sites[key] = [1, n]
                    else:
                        scell[0] += 1
                        scell[1] += n
            processed += n
            self._events_processed += n
            audit = self._audit
            if audit is not None:
                self._audit_countdown -= n
                if self._audit_countdown <= 0:
                    self._audit_countdown = self._audit_every
                    audit()
        return self.now

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def batch_counts(self) -> dict[str, int]:
        """site -> events that were delivered through its batch handler."""
        return {name: cell[1] for name, cell in self._batch_sites.items()}

    def profile_to_dict(self) -> dict:
        data = super().profile_to_dict()
        for name, cell in self._batch_sites.items():
            entry = data.get(name)
            if entry is not None:
                entry["batched"] = cell[1]
        return data
