"""Statistics primitives shared by every simulated component.

Three building blocks cover everything the paper reports:

* :class:`Counter` — named monotonically increasing event counts
  (TLB hits/misses, MSHR failures, issued instructions, ...).
* :class:`Histogram` — value distributions (walk levels, queue depths).
* :class:`LatencyTracker` — per-request latency accumulation split into
  named components, used for the queueing-delay vs page-table-access
  breakdown of Figures 7 and 18.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable


class Counter:
    """A bag of named integer counters."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def live(self) -> dict[str, int]:
        """The mutable name -> count mapping itself (hot-path accessor).

        Components that bump the same counter hundreds of thousands of
        times per run hoist this mapping and precompute their counter
        names, so each event costs one dict ``+= 1`` instead of a method
        call plus an f-string.  The mapping is a ``defaultdict(int)``
        and the reference stays valid across :meth:`reset` (which clears
        in place, never rebinds).
        """
        return self._counts

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` counts, 0.0 when the denominator is 0."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def to_dict(self) -> dict[str, int]:
        """JSON-safe snapshot (alias of :meth:`as_dict` for symmetry)."""
        return self.as_dict()

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "Counter":
        counter = cls()
        for name, value in data.items():
            counter._counts[name] = int(value)
        return counter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        items = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Counter({items})"


class Histogram:
    """Integer-valued histogram with summary statistics."""

    def __init__(self) -> None:
        self._buckets: dict[int, int] = defaultdict(int)
        self._count = 0
        self._total = 0
        self._max: int | None = None
        self._min: int | None = None

    def record(self, value: int, weight: int = 1) -> None:
        self._buckets[value] += weight
        self._count += weight
        self._total += value * weight
        if self._max is None or value > self._max:
            self._max = value
        if self._min is None or value < self._min:
            self._min = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> int:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def maximum(self) -> int:
        return self._max if self._max is not None else 0

    @property
    def minimum(self) -> int:
        return self._min if self._min is not None else 0

    def percentile(self, fraction: float) -> int:
        """Value at the given cumulative fraction (0 < fraction <= 1)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self._count == 0:
            return 0
        target = fraction * self._count
        running = 0
        for value in sorted(self._buckets):
            running += self._buckets[value]
            if running >= target:
                return value
        return self.maximum

    def percentiles(self, fractions: Iterable[float]) -> dict[float, int]:
        """Values at several cumulative fractions in one bucket pass."""
        ordered = sorted(fractions)
        if not ordered:
            return {}
        if ordered[0] <= 0.0 or ordered[-1] > 1.0:
            raise ValueError("fractions must be in (0, 1]")
        out: dict[float, int] = {}
        if self._count == 0:
            return {fraction: 0 for fraction in ordered}
        running = 0
        cursor = 0
        for value in sorted(self._buckets):
            running += self._buckets[value]
            while cursor < len(ordered) and running >= ordered[cursor] * self._count:
                out[ordered[cursor]] = value
                cursor += 1
            if cursor == len(ordered):
                break
        for fraction in ordered[cursor:]:
            out[fraction] = self.maximum
        return out

    @property
    def median(self) -> int:
        return self.percentile(0.5)

    def as_dict(self) -> dict[int, int]:
        return dict(self._buckets)

    def to_dict(self) -> dict:
        """JSON-safe form: buckets as sorted ``[value, weight]`` pairs."""
        return {"buckets": [[v, self._buckets[v]] for v in sorted(self._buckets)]}

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        histogram = cls()
        for value, weight in data["buckets"]:
            histogram.record(int(value), int(weight))
        return histogram


@dataclass
class LatencySample:
    """One completed request with a per-component latency breakdown."""

    components: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.components.values())


class LatencyTracker:
    """Accumulates per-request latencies split into named components.

    SoftWalker's analysis hinges on separating *queueing delay* (time a
    walk waits for a walker) from *access latency* (time spent actually
    traversing the page table).  Components are free-form strings so the
    same tracker also covers communication and instruction-execution
    overheads of the software walker.
    """

    def __init__(self) -> None:
        self._component_totals: dict[str, int] = defaultdict(int)
        self._count = 0
        self._total = 0

    def record(self, **components: int) -> None:
        """Record one completed request, e.g. ``record(queueing=120, access=300)``."""
        for name, value in components.items():
            if value < 0:
                raise ValueError(f"negative latency component {name}={value}")
            self._component_totals[name] += value
            self._total += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> int:
        return self._total

    @property
    def mean_total(self) -> float:
        return self._total / self._count if self._count else 0.0

    def component_total(self, name: str) -> int:
        return self._component_totals.get(name, 0)

    def component_mean(self, name: str) -> float:
        if self._count == 0:
            return 0.0
        return self._component_totals.get(name, 0) / self._count

    def component_fraction(self, name: str) -> float:
        """Fraction of the grand total attributed to one component."""
        if self._total == 0:
            return 0.0
        return self._component_totals.get(name, 0) / self._total

    def component_shares(self) -> dict[str, float]:
        """Every component's fraction of the grand total (sums to 1.0).

        The Figure 7/18 stacked-bar breakdown in one call — reports and
        trace exporters should use this instead of recomputing ratios.
        """
        if self._total == 0:
            return {name: 0.0 for name in self._component_totals}
        return {
            name: value / self._total
            for name, value in self._component_totals.items()
        }

    def mean_components(self) -> dict[str, float]:
        """Per-request mean of every component (cycles)."""
        if self._count == 0:
            return {name: 0.0 for name in self._component_totals}
        return {
            name: value / self._count
            for name, value in self._component_totals.items()
        }

    def components(self) -> dict[str, int]:
        return dict(self._component_totals)

    def to_dict(self) -> dict:
        """JSON-safe form: request count plus per-component totals."""
        return {"count": self._count, "components": dict(self._component_totals)}

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyTracker":
        tracker = cls()
        tracker._count = int(data["count"])
        for name, value in data["components"].items():
            tracker._component_totals[name] = int(value)
            tracker._total += int(value)
        return tracker


class StatsRegistry:
    """Top-level container handed to every component of a simulation.

    Keeps one shared :class:`Counter` plus named histograms and latency
    trackers, so experiment harnesses can pull every statistic from a
    single object after a run.

    The registry also carries the run's observability bundle
    (:class:`~repro.obs.Observability`): since every component already
    receives ``stats``, the trace recorder and metrics registry ride
    along without widening any constructor.  The default bundle is all
    null objects, so untraced runs pay one branch per hook site.
    """

    def __init__(self, obs=None) -> None:
        if obs is None:
            from repro.obs import NULL_OBS

            obs = NULL_OBS
        self.obs = obs
        self.counters = Counter()
        self._histograms: dict[str, Histogram] = {}
        self._latencies: dict[str, LatencyTracker] = {}

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram()
        return self._histograms[name]

    def latency(self, name: str) -> LatencyTracker:
        if name not in self._latencies:
            self._latencies[name] = LatencyTracker()
        return self._latencies[name]

    def histogram_names(self) -> list[str]:
        return sorted(self._histograms)

    def latency_names(self) -> list[str]:
        return sorted(self._latencies)

    # ------------------------------------------------------------------
    # Serialization (the persistent result store's wire format)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe snapshot of every counter, histogram, and tracker.

        The observability bundle is deliberately excluded: it holds live
        recorders, not results.  :meth:`from_dict` restores a registry
        whose derived statistics — including everything
        :meth:`~repro.gpu.gpu.SimulationResult.fingerprint` reads — are
        identical to the original's.
        """
        return {
            "counters": self.counters.to_dict(),
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in self.histogram_names()
            },
            "latencies": {
                name: self._latencies[name].to_dict()
                for name in self.latency_names()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StatsRegistry":
        registry = cls()
        registry.counters = Counter.from_dict(data["counters"])
        for name, payload in data["histograms"].items():
            registry._histograms[name] = Histogram.from_dict(payload)
        for name, payload in data["latencies"].items():
            registry._latencies[name] = LatencyTracker.from_dict(payload)
        return registry
