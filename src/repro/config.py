"""Simulation configuration (Table 3 of the paper).

Every architectural knob the evaluation sweeps lives here as a dataclass
field, with defaults matching the paper's RTX 3070-like configuration:
46 SMs at 1500 MHz, per-SM 32-entry fully-associative L1 TLBs, a shared
1024-entry 16-way L2 TLB with 128 MSHRs, a 4 MB L2 data cache, GDDR6
memory at 448 GB/s over 16 channels, a four-level radix page table with a
32-entry page walk cache, and 32 hardware page table walkers.
"""

from __future__ import annotations

import difflib
import os
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Callable, ClassVar, Iterator, Mapping

from repro.arch.registry import (
    DISTRIBUTOR_POLICIES,
    EVENT_ENGINES,
    PAGE_TABLE_KINDS,
    PWB_POLICIES,
    WALK_BACKENDS,
    load_plugins,
)

KB = 1024
MB = 1024 * 1024

#: Base page size used throughout the paper's main evaluation.
PAGE_SIZE_64K = 64 * KB
#: Large page size used in the Section 6.3 sensitivity study.
PAGE_SIZE_2M = 2 * MB

#: Virtual/physical address widths (NVIDIA Pascal MMU format, ref [60]).
VIRTUAL_ADDRESS_BITS = 49
PHYSICAL_ADDRESS_BITS = 47


def _dataclass_from_dict(cls, data: Mapping) -> Any:
    """Build a config dataclass from a mapping, rejecting unknown keys.

    Inline config dicts arrive from files, CLI flags, and service
    sockets; a typoed knob must fail loudly here rather than silently
    simulate the default.
    """
    if not isinstance(data, Mapping):
        raise ValueError(
            f"{cls.__name__} expects a mapping, got {type(data).__name__}"
        )
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        hints = []
        for name in unknown:
            close = difflib.get_close_matches(name, known, n=1)
            hints.append(f"{name!r}" + (f" (did you mean {close[0]!r}?)" if close else ""))
        raise ValueError(f"unknown {cls.__name__} field(s): {', '.join(hints)}")
    return cls(**data)


class SerializableConfig:
    """Lossless ``to_dict``/``from_dict`` for flat config dataclasses."""

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> Any:
        return _dataclass_from_dict(cls, data)


@dataclass(frozen=True)
class TLBConfig(SerializableConfig):
    """One TLB level.  ``associativity=0`` means fully associative."""

    entries: int
    associativity: int
    latency: int
    mshr_entries: int
    mshr_merges: int

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("TLB must have at least one entry")
        if self.associativity < 0:
            raise ValueError("associativity must be >= 0 (0 = fully associative)")
        if self.associativity and self.entries % self.associativity:
            raise ValueError("entries must be a multiple of associativity")

    @property
    def num_sets(self) -> int:
        if self.associativity == 0:
            return 1
        return self.entries // self.associativity


@dataclass(frozen=True)
class CacheConfig(SerializableConfig):
    """A data cache level (L1D folded into latency; L2D fully modelled)."""

    size_bytes: int
    line_bytes: int
    sector_bytes: int
    associativity: int
    latency: int
    mshr_entries: int

    def __post_init__(self) -> None:
        if self.line_bytes % self.sector_bytes:
            raise ValueError("line size must be a multiple of sector size")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError("cache size must divide evenly into sets")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class DRAMConfig(SerializableConfig):
    """GDDR6 channel model: fixed access latency plus per-channel bandwidth."""

    channels: int = 16
    latency: int = 250
    #: Service cycles a 32B sector occupies one channel; derived from
    #: 448 GB/s aggregate at a 1500 MHz core clock (~18.7 B/cycle/channel).
    cycles_per_access: int = 2

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ValueError("need at least one DRAM channel")


@dataclass(frozen=True)
class PageTableConfig(SerializableConfig):
    """Radix page-table geometry."""

    page_size: int = PAGE_SIZE_64K
    levels: int = 4
    pte_bytes: int = 8

    def __post_init__(self) -> None:
        if self.page_size & (self.page_size - 1):
            raise ValueError("page size must be a power of two")
        if self.levels < 1:
            raise ValueError("page table needs at least one level")

    @property
    def offset_bits(self) -> int:
        return self.page_size.bit_length() - 1

    @property
    def vpn_bits(self) -> int:
        return VIRTUAL_ADDRESS_BITS - self.offset_bits

    @property
    def pfn_bits(self) -> int:
        return PHYSICAL_ADDRESS_BITS - self.offset_bits


@dataclass(frozen=True)
class PTWConfig(SerializableConfig):
    """Hardware page-walk subsystem: walkers, PWB, and page walk cache."""

    num_walkers: int = 32
    pwb_entries: int = 64
    pwb_ports: int = 1
    pwc_entries: int = 32
    #: Deepest page-table level whose node pointers the PWC caches.
    #: 2 = PDE-cache style (walks always read >= 2 PTEs); 1 = aggressive.
    pwc_min_level: int = 2
    #: Neighborhood-aware coalescing (NHA baseline): merge pending walks
    #: whose final-level PTEs share one cache sector.
    nha_coalescing: bool = False
    #: "radix" (default) or "hashed" (the FS-HPT baseline).
    page_table_kind: str = "radix"
    #: PWB dequeue order: "fcfs", or "sm_batch" — the warp-aware
    #: page-walk scheduling baseline (ref [85]) that drains walks of one
    #: requester together to shrink intra-warp completion spread.
    pwb_policy: str = "fcfs"

    def __post_init__(self) -> None:
        if self.num_walkers < 0:
            raise ValueError("number of walkers cannot be negative")
        if self.num_walkers and self.pwb_entries < 1:
            raise ValueError("PWB needs at least one entry")
        PAGE_TABLE_KINDS.validate(self.page_table_kind)
        PWB_POLICIES.validate(self.pwb_policy)


class DistributorPolicy:
    """Request Distributor policies evaluated in Figure 26.

    The built-in trio; the authoritative catalogue (including plugin
    policies) is :data:`repro.arch.registry.DISTRIBUTOR_POLICIES`.
    """

    ROUND_ROBIN = "round_robin"
    RANDOM = "random"
    STALL_AWARE = "stall_aware"

    ALL = (ROUND_ROBIN, RANDOM, STALL_AWARE)


@dataclass(frozen=True)
class SoftWalkerConfig(SerializableConfig):
    """SoftWalker: PW Warps, SoftPWB, Request Distributor, In-TLB MSHR."""

    enabled: bool = False
    #: 32 page-walk threads per SM (one PW Warp).
    pw_threads_per_sm: int = 32
    softpwb_entries: int = 32
    #: Maximum L2 TLB entries repurposable as MSHRs (0 disables In-TLB MSHR).
    in_tlb_mshr_entries: int = 1024
    #: Keep hardware walkers and overflow to software (Section 5.4).
    hybrid: bool = False
    distributor_policy: str = DistributorPolicy.ROUND_ROBIN
    #: Issue cost of one PW-warp instruction when the SM has free slots.
    instruction_cycles: int = 4
    #: Number of instructions per walk level (offset compute, LDPT, FPWC).
    instructions_per_level: int = 3
    #: Instructions outside the level loop (request decode, FL2T).
    instructions_fixed: int = 5
    #: Ablation: execute the PW warp in strict SIMT lockstep — all 32
    #: threads advance level-by-level together, each level waiting for
    #: the slowest LDPT (memory divergence).  The paper's design lets
    #: threads proceed independently; this knob quantifies why.
    simt_lockstep: bool = False

    def __post_init__(self) -> None:
        DISTRIBUTOR_POLICIES.validate(self.distributor_policy)
        if self.enabled and self.pw_threads_per_sm < 1:
            raise ValueError("PW warp needs at least one thread")
        if self.softpwb_entries < self.pw_threads_per_sm:
            raise ValueError("SoftPWB must hold at least one entry per PW thread")


@dataclass(frozen=True)
class GPUConfig:
    """Top-level GPU configuration (Table 3 defaults)."""

    num_sms: int = 46
    max_warps_per_sm: int = 48
    warp_width: int = 32
    #: Warp instructions an SM can issue per cycle.
    issue_width: int = 1

    l1_tlb: TLBConfig = field(
        default_factory=lambda: TLBConfig(
            entries=32, associativity=0, latency=10, mshr_entries=32, mshr_merges=192
        )
    )
    l2_tlb: TLBConfig = field(
        default_factory=lambda: TLBConfig(
            entries=1024, associativity=16, latency=80, mshr_entries=128, mshr_merges=46
        )
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=128 * KB,
            line_bytes=128,
            sector_bytes=32,
            associativity=4,
            latency=40,
            mshr_entries=64,
        )
    )
    l2d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=4 * MB,
            line_bytes=128,
            sector_bytes=32,
            associativity=16,
            latency=180,
            mshr_entries=256,
        )
    )
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    page_table: PageTableConfig = field(default_factory=PageTableConfig)
    ptw: PTWConfig = field(default_factory=PTWConfig)
    softwalker: SoftWalkerConfig = field(default_factory=SoftWalkerConfig)

    #: Fixed per-level page-table access latency override; None means the
    #: latency is measured dynamically through the L2 cache / DRAM model
    #: (the paper's default).  Figure 23 sweeps this knob.
    fixed_pt_level_latency: int | None = None

    #: Attach In-TLB MSHRs to a hardware-walker configuration even when
    #: SoftWalker is disabled (the Figure 21 "128 PTWs + In-TLB" study).
    hw_in_tlb_mshr: bool = False

    #: CoLT-style L2 TLB coalescing span in pages (power of two; 1
    #: disables).  One entry covers an aligned block of contiguously
    #: mapped pages, extending TLB reach (refs [74, 6, 49]).
    tlb_coalescing_span: int = 1

    #: Avatar-style TLB speculation (ref [72]): guess physical addresses
    #: from contiguity on L1 TLB misses; correct guesses skip the L2 TLB
    #: and walk, wrong ones pay a squash penalty and walk normally.
    tlb_speculation: bool = False

    #: Explicit walk-backend registry name (``repro.arch.WALK_BACKENDS``),
    #: letting plugins swap the whole walk subsystem in.  None — the
    #: default — derives the backend from the SoftWalker knobs exactly as
    #: the historical assembly did, and is *dropped* from
    #: :meth:`to_dict`, so every pre-existing config fingerprint stays
    #: bit-identical.
    walk_backend: str | None = None

    #: Event-engine registry name (``repro.arch.EVENT_ENGINES``): how the
    #: host executes the event queue (``"heap"`` per-event dispatch,
    #: ``"batched"`` same-cycle batch dispatch).  Results are
    #: bit-identical across engines, so this knob is *excluded* from
    #: :func:`config_fingerprint` — runs under either engine dedupe to
    #: the same store entry.  None means the builder's default ("heap").
    event_engine: str | None = None

    def __post_init__(self) -> None:
        if self.walk_backend is not None:
            WALK_BACKENDS.validate(self.walk_backend)
        if self.event_engine is not None:
            EVENT_ENGINES.validate(self.event_engine)

    def derive(self, **overrides: Any) -> "GPUConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **overrides)

    def with_ptw(self, **overrides: Any) -> "GPUConfig":
        return replace(self, ptw=replace(self.ptw, **overrides))

    def with_softwalker(self, **overrides: Any) -> "GPUConfig":
        return replace(self, softwalker=replace(self.softwalker, **overrides))

    def with_l2_tlb(self, **overrides: Any) -> "GPUConfig":
        return replace(self, l2_tlb=replace(self.l2_tlb, **overrides))

    def with_page_size(self, page_size: int) -> "GPUConfig":
        """Switch page size; 2MB pages use a three-level walk (Section 6.3)."""
        levels = 3 if page_size >= PAGE_SIZE_2M else 4
        return replace(
            self,
            page_table=replace(self.page_table, page_size=page_size, levels=levels),
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    #: Nested config fields and the dataclass each deserializes into.
    _NESTED: ClassVar[dict[str, type]] = {}  # filled in below the class body

    def to_dict(self) -> dict:
        """Lossless JSON-safe dict; ``from_dict`` inverts it exactly.

        ``walk_backend`` and ``event_engine`` are omitted when None (the
        default) so the serialized shape of every config that predates
        either field is unchanged — the golden-fingerprint tests pin
        this.
        """
        data = asdict(self)
        if self.walk_backend is None:
            del data["walk_backend"]
        if self.event_engine is None:
            del data["event_engine"]
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "GPUConfig":
        """Rebuild a config from :meth:`to_dict` output (or any subset).

        Missing fields take their defaults; unknown fields raise with a
        did-you-mean hint; nested sections accept plain mappings.
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                f"GPUConfig expects a mapping, got {type(data).__name__}"
            )
        converted = dict(data)
        for key, sub_cls in cls._NESTED.items():
            value = converted.get(key)
            if isinstance(value, Mapping):
                converted[key] = sub_cls.from_dict(value)
        return _dataclass_from_dict(cls, converted)


GPUConfig._NESTED = {
    "l1_tlb": TLBConfig,
    "l2_tlb": TLBConfig,
    "l1d": CacheConfig,
    "l2d": CacheConfig,
    "dram": DRAMConfig,
    "page_table": PageTableConfig,
    "ptw": PTWConfig,
    "softwalker": SoftWalkerConfig,
}


def baseline_config() -> GPUConfig:
    """The paper's baseline: 32 hardware PTWs, 128 L2 TLB MSHRs, 64KB pages."""
    return GPUConfig()


def softwalker_config(
    *,
    in_tlb_mshr_entries: int = 1024,
    hybrid: bool = False,
    distributor_policy: str = DistributorPolicy.ROUND_ROBIN,
) -> GPUConfig:
    """SoftWalker: software walkers (plus hardware ones when hybrid)."""
    base = baseline_config()
    return base.derive(
        ptw=replace(base.ptw, num_walkers=base.ptw.num_walkers if hybrid else 0),
        softwalker=replace(
            base.softwalker,
            enabled=True,
            in_tlb_mshr_entries=in_tlb_mshr_entries,
            hybrid=hybrid,
            distributor_policy=distributor_policy,
        ),
    )


def nha_config() -> GPUConfig:
    """Baseline plus Neighborhood-Aware page-walk coalescing (ref [86])."""
    return baseline_config().with_ptw(nha_coalescing=True)


def fshpt_config() -> GPUConfig:
    """Baseline with a Fixed-Size Hashed Page Table (ref [32])."""
    return baseline_config().with_ptw(page_table_kind="hashed")


def avatar_config() -> GPUConfig:
    """Baseline plus Avatar-style TLB speculation (ref [72])."""
    return baseline_config().derive(tlb_speculation=True)


def ideal_config() -> GPUConfig:
    """Ideal PTWs with ideal MSHRs: effectively unbounded concurrency."""
    base = baseline_config()
    return base.derive(
        ptw=replace(
            base.ptw, num_walkers=1 << 20, pwb_entries=1 << 20, pwb_ports=1 << 20
        ),
        l2_tlb=replace(base.l2_tlb, mshr_entries=1 << 20),
    )


def config_fingerprint(config: GPUConfig) -> dict:
    """JSON-safe nested dict of every knob, for stable cache keys.

    Two configs with equal fingerprints build identical machines, so
    the persistent result store keys simulations on this (plus the
    workload point) rather than on pickled objects.  Delegates to
    :meth:`GPUConfig.to_dict`, so a named variant and an equivalent
    inline config dict produce the *same* fingerprint (and therefore
    hit the same store entry).

    ``event_engine`` is stripped: engine choice is a host-side
    execution strategy with bit-identical results (pinned by the golden
    fingerprints), so a batched run must dedupe against — and be served
    from — a heap run's cached result.
    """
    data = config.to_dict()
    data.pop("event_engine", None)
    return data


@dataclass(frozen=True)
class ConfigVariant:
    """One named entry of a :class:`ConfigRegistry`."""

    name: str
    factory: Callable[[], GPUConfig]
    description: str = ""

    def build(self) -> GPUConfig:
        return self.factory()


class ConfigRegistry:
    """Name -> configuration-factory mapping shared by every front end.

    The CLI, the experiment figures, and the sweep engine all resolve
    named configurations here, so a variant registered once (say from a
    user script) is immediately selectable everywhere.  Iteration and
    ``registry[name]`` mimic the plain dict the CLI historically used.
    """

    def __init__(self) -> None:
        self._variants: dict[str, ConfigVariant] = {}

    def register(
        self,
        name: str,
        factory: Callable[[], GPUConfig],
        *,
        description: str = "",
        replace_existing: bool = False,
    ) -> ConfigVariant:
        if not replace_existing and name in self._variants:
            raise ValueError(f"configuration {name!r} is already registered")
        variant = ConfigVariant(name=name, factory=factory, description=description)
        self._variants[name] = variant
        return variant

    def get(self, name: str) -> GPUConfig:
        """Build the named configuration (a fresh instance every call)."""
        return self.variant(name).build()

    def variant(self, name: str) -> ConfigVariant:
        try:
            return self._variants[name]
        except KeyError:
            pass
        # Plugins may register named variants; load and retry once.
        if load_plugins():
            try:
                return self._variants[name]
            except KeyError:
                pass
        known = ", ".join(sorted(self._variants)) or "(none)"
        message = f"unknown configuration {name!r}; registered: {known}"
        close = difflib.get_close_matches(name, self._variants, n=1)
        if close:
            message += f" — did you mean {close[0]!r}?"
        raise KeyError(message) from None

    def factory(self, name: str) -> Callable[[], GPUConfig]:
        return self.variant(name).factory

    def describe(self, name: str) -> str:
        return self.variant(name).description

    def variants(self) -> list[ConfigVariant]:
        """Every registered variant, in registration order."""
        return list(self._variants.values())

    def names(self) -> list[str]:
        return list(self._variants)

    def __contains__(self, name: object) -> bool:
        return name in self._variants

    def __iter__(self) -> Iterator[str]:
        return iter(self._variants)

    def __len__(self) -> int:
        return len(self._variants)

    def __getitem__(self, name: str) -> Callable[[], GPUConfig]:
        return self.factory(name)


#: Default daemon socket path; ``REPRO_SOCKET`` overrides it.
DEFAULT_SERVICE_SOCKET = ".repro/service.sock"

_SOCKET_ENV = "REPRO_SOCKET"
_WORKERS_ENV = "REPRO_WORKERS"


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for the simulation-as-a-service daemon (``repro serve``).

    Architectural knobs live in :class:`GPUConfig`; these are the
    *operational* ones — where the daemon listens, how much work it
    admits before pushing back, how many worker processes run at once,
    and how patiently it drains on shutdown.  See docs/service.md.
    """

    #: Unix-domain socket the daemon listens on.
    socket_path: str = DEFAULT_SERVICE_SOCKET
    #: Optional ``host:port`` TCP listener beside the unix socket (the
    #: fleet transport worker hosts and remote clients connect to).
    tcp: str | None = None
    #: Queue-state file written on drain; None derives
    #: ``<socket_path>.state.json``.
    state_path: str | None = None
    #: Queued jobs (all clients) before submits get a 429 reply.
    max_depth: int = 16
    #: Concurrent *local* worker processes (the in-flight slot bound);
    #: 0 disables local execution entirely — a pure scheduler whose jobs
    #: are all pulled by remote worker hosts.
    max_inflight: int = 2
    #: Queued jobs one client may hold before its submits get a 429.
    max_client_depth: int = 8
    #: Wall-clock seconds per job attempt (None = no watchdog); enforced
    #: inside the worker by the supervised runner.
    job_timeout: float | None = None
    #: Watchdog-timeout retries per job before it degrades/fails.
    max_retries: int = 1
    #: First retry sleeps this many seconds, doubling per retry.
    backoff_base: float = 0.0
    #: Engine events per supervised slice (the heartbeat cadence).
    slice_events: int = 20_000
    #: Cycles between gauge samples streamed to subscribers (0 = off).
    sample_interval: int = 1_000
    #: Seconds to let in-flight jobs finish during a drain before they
    #: are checkpointed back onto the persisted queue.
    drain_grace: float = 30.0

    # --- fleet execution (leases, worker hosts, tenant limits) --------
    #: Seconds a dispatch lease stays valid without a heartbeat refresh;
    #: a worker silent for longer is presumed dead and its job requeued.
    lease_ttl: float = 15.0
    #: Reaper cadence; None derives ``lease_ttl / 4`` (clamped to
    #: [0.05, lease_ttl]).
    lease_check_interval: float | None = None
    #: Directory of O_EXCL lease claim slots; None derives
    #: ``<socket_path>.leases``.
    lease_dir: str | None = None
    #: Crashed dispatches (worker death / lease expiry) a job may burn
    #: before it is dead-lettered instead of requeued.
    attempt_budget: int = 3
    #: First crash requeue waits this many seconds, doubling per crash.
    requeue_backoff: float = 0.5
    #: Seconds an idle worker host waits between queue polls.
    worker_poll_interval: float = 0.5
    #: Result-store size budget in bytes (oldest entries evicted past
    #: it); None leaves the store unbounded.
    store_budget: int | None = None
    #: Per-client admission rate limit in submissions/second (token
    #: bucket with ``client_burst`` capacity); None disables it.
    client_rate: float | None = None
    #: Token-bucket burst capacity for ``client_rate``.
    client_burst: int = 8

    def __post_init__(self) -> None:
        if self.max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if self.max_inflight < 0:
            raise ValueError("max_inflight must be >= 0 (0 = no local workers)")
        if self.max_client_depth < 1:
            raise ValueError("max_client_depth must be >= 1")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError("job_timeout must be positive (or None)")
        if self.max_retries < 0 or self.backoff_base < 0:
            raise ValueError("max_retries and backoff_base must be >= 0")
        if self.slice_events < 1:
            raise ValueError("slice_events must be >= 1")
        if self.sample_interval < 0:
            raise ValueError("sample_interval must be >= 0 (0 = off)")
        if self.drain_grace < 0:
            raise ValueError("drain_grace must be >= 0")
        if self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if self.lease_check_interval is not None and self.lease_check_interval <= 0:
            raise ValueError("lease_check_interval must be positive (or None)")
        if self.attempt_budget < 1:
            raise ValueError("attempt_budget must be >= 1")
        if self.requeue_backoff < 0:
            raise ValueError("requeue_backoff must be >= 0")
        if self.worker_poll_interval <= 0:
            raise ValueError("worker_poll_interval must be positive")
        if self.store_budget is not None and self.store_budget < 1:
            raise ValueError("store_budget must be >= 1 (or None)")
        if self.client_rate is not None and self.client_rate <= 0:
            raise ValueError("client_rate must be positive (or None)")
        if self.client_burst < 1:
            raise ValueError("client_burst must be >= 1")

    @property
    def effective_state_path(self) -> str:
        return (
            self.state_path
            if self.state_path is not None
            else self.socket_path + ".state.json"
        )

    @property
    def effective_lease_dir(self) -> str:
        return (
            self.lease_dir
            if self.lease_dir is not None
            else self.socket_path + ".leases"
        )

    @property
    def effective_lease_check_interval(self) -> float:
        if self.lease_check_interval is not None:
            return self.lease_check_interval
        return min(self.lease_ttl, max(0.05, self.lease_ttl / 4.0))

    @classmethod
    def from_env(cls, **overrides: Any) -> "ServiceConfig":
        """Defaults with ``REPRO_SOCKET`` applied, then ``overrides``."""
        if "socket_path" not in overrides:
            socket = os.environ.get(_SOCKET_ENV)
            if socket:
                overrides["socket_path"] = socket
        return cls(**overrides)


def default_socket_path() -> str:
    """Socket path named by ``REPRO_SOCKET``, else the default."""
    return os.environ.get(_SOCKET_ENV) or DEFAULT_SERVICE_SOCKET


def default_worker_count() -> int:
    """Worker hosts ``repro worker`` starts: ``REPRO_WORKERS`` or 1."""
    raw = os.environ.get(_WORKERS_ENV)
    if not raw:
        return 1
    try:
        count = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from None
    if count < 1:
        raise ValueError(f"REPRO_WORKERS must be >= 1, got {count}")
    return count


#: The default registry: every named configuration of the evaluation.
DEFAULT_CONFIGS = ConfigRegistry()
DEFAULT_CONFIGS.register(
    "baseline", baseline_config,
    description="32 hardware PTWs, 128 L2 TLB MSHRs, 64KB pages (Table 3)",
)
DEFAULT_CONFIGS.register(
    "nha", nha_config,
    description="baseline plus Neighborhood-Aware page-walk coalescing",
)
DEFAULT_CONFIGS.register(
    "fshpt", fshpt_config,
    description="baseline with a Fixed-Size Hashed Page Table",
)
DEFAULT_CONFIGS.register(
    "avatar", avatar_config,
    description="baseline plus Avatar-style TLB speculation",
)
DEFAULT_CONFIGS.register(
    "softwalker", softwalker_config,
    description="software page-table walk with In-TLB MSHR (the paper's design)",
)
DEFAULT_CONFIGS.register(
    "softwalker-no-intlb", lambda: softwalker_config(in_tlb_mshr_entries=0),
    description="SoftWalker with the In-TLB MSHR disabled",
)
DEFAULT_CONFIGS.register(
    "hybrid", lambda: softwalker_config(hybrid=True),
    description="hardware walkers kept, software walkers absorb the overflow",
)
DEFAULT_CONFIGS.register(
    "ideal", ideal_config,
    description="unbounded walkers and MSHRs (the upper-bound study)",
)
