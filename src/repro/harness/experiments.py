"""Per-figure experiment definitions.

One function per table/figure of the paper's evaluation.  Each returns
an :class:`ExperimentTable` whose rows are what the paper's plot shows;
the benchmark suite runs these and prints/saves the rendered tables, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the full results
report (see EXPERIMENTS.md for paper-vs-measured commentary).

Heavy sweeps run over a representative irregular subset
(:data:`SWEEP_ABBRS`) instead of all twelve irregular benchmarks; the
per-benchmark figures (16-20, 25) use the full suite.

Every figure first *declares* its sweep matrix — the full set of
(config, benchmark) points it needs — and hands it to the default
:class:`~repro.harness.runner.Runner` via :func:`_prefetch`.  The
runner deduplicates points shared between figures, executes misses in
parallel when ``--jobs``/``REPRO_JOBS`` allow, and serves repeats from
its two-tier (memory + disk) cache; the row-assembly loops below then
hit the warm cache exclusively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.area import (
    PTWAreaModel,
    hardware_overhead_summary,
    softwalker_relative_area,
)
from repro.analysis.report import format_table, geomean
from repro.config import (
    PAGE_SIZE_2M,
    DistributorPolicy,
    GPUConfig,
    baseline_config,
    fshpt_config,
    ideal_config,
    nha_config,
    softwalker_config,
)
from repro.gpu.gpu import GPUSimulator, SimulationResult
from repro.harness.pool import SweepPoint, matrix_points
from repro.harness.runner import Runner, default_runner
from repro.workloads.base import TraceWorkload
from repro.workloads.catalog import (
    ALL_ABBRS,
    IRREGULAR_ABBRS,
    REGULAR_ABBRS,
    SCALABLE_ABBRS,
    get_spec,
)
from repro.workloads.microbench import MicrobenchWorkload

#: Representative irregular subset for multi-point sweeps.
SWEEP_ABBRS = ["dc", "nw", "xsb", "sy2k", "spmv", "gups"]

#: Footprint multiplier that pushes the scalable workloads past the
#: 2MB-page L2 TLB coverage (2GB), per Section 6.3's methodology.
LARGE_PAGE_FOOTPRINT_SCALE = 8.0


@dataclass
class ExperimentTable:
    """A rendered experiment: title, column headers, data rows."""

    name: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text

    def save(self, directory: str | Path = "results") -> Path:
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        out = path / f"{self.name}.txt"
        out.write_text(self.render() + "\n")
        return out

    def column(self, header: str) -> list:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_for(self, key) -> list:
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(key)


def _prefetch(
    configs: Iterable[GPUConfig],
    abbrs: Iterable[str],
    *,
    scale: float | None,
    footprint_scale: float = 1.0,
    extra: Iterable[SweepPoint] = (),
) -> Runner:
    """Declare a figure's sweep matrix and execute it up front.

    Returns the default runner with every declared point resolved in
    its cache, so the figure's row-assembly loops are pure lookups.
    """
    runner = default_runner()
    points = matrix_points(
        configs, abbrs, scale=scale, footprint_scale=footprint_scale
    )
    points.extend(extra)
    runner.sweep(points)
    return runner


def sweep_resultset(
    configs: Iterable[GPUConfig],
    abbrs: Iterable[str],
    *,
    scale: float | None = None,
    seeds: Sequence[int] = (1, 2, 3),
    jobs: int | None = None,
):
    """Seed-replicated sweep as a :class:`repro.analysis.ResultSet`.

    The figures above aggregate single deterministic runs into tables;
    statistical questions — confidence intervals, significance, design
    ranking — belong to :mod:`repro.analysis.experiment`.  This is the
    sanctioned bridge between the two layers: run the matrix once per
    seed and hand back THE container the analysis layer consumes
    (``analyze``, ``diff_resultsets``, ``repro report``).  Do not scrape
    the :class:`~repro.harness.store.ResultStore` entry files directly;
    ``ResultSet.from_store`` is the loading path for persisted sweeps.
    """
    from repro.harness.pool import make_point

    points = [
        make_point(config, abbr, scale=scale, seed=seed)
        for config in configs
        for abbr in abbrs
        for seed in seeds
    ]
    return default_runner().resultset(points, jobs=jobs)


# ----------------------------------------------------------------------
# Configuration sets
# ----------------------------------------------------------------------
def figure16_configs() -> dict[str, GPUConfig]:
    """The Figure 16 comparison set."""
    return {
        "NHA": nha_config(),
        "FS-HPT": fshpt_config(),
        "SW w/o In-TLB": softwalker_config(in_tlb_mshr_entries=0),
        "SoftWalker": softwalker_config(),
        "SW Hybrid": softwalker_config(hybrid=True),
        "Ideal": ideal_config(),
    }


def scaled_ptw_config(num_walkers: int, *, pwb_ports: int = 1) -> GPUConfig:
    """Hardware scaling: PWB entries and L2 TLB MSHRs grow with walkers."""
    base = baseline_config()
    scale = max(1, num_walkers // base.ptw.num_walkers)
    return base.with_ptw(
        num_walkers=num_walkers,
        pwb_entries=base.ptw.pwb_entries * scale,
        pwb_ports=pwb_ports,
    ).with_l2_tlb(mshr_entries=base.l2_tlb.mshr_entries * scale)


def scaled_mshr_config(mshr_entries: int) -> GPUConfig:
    """Scale only the L2 TLB MSHRs, keeping 32 walkers (Figure 12)."""
    return baseline_config().with_l2_tlb(mshr_entries=mshr_entries)


# ----------------------------------------------------------------------
# Motivation figures
# ----------------------------------------------------------------------
def fig03_access_patterns(scale: float | None = None) -> ExperimentTable:
    """Page-level access-pattern statistics for nw, bfs (irregular), 2dc."""
    table = ExperimentTable(
        name="fig03_access_patterns",
        title="Figure 3: page-granularity access patterns (64KB pages)",
        headers=[
            "workload",
            "category",
            "pages touched",
            "mean pages / warp instruction",
            "mean page span / instruction",
        ],
    )
    for abbr in ["nw", "bfs", "2dc"]:
        spec = get_spec(abbr)
        workload = TraceWorkload(spec, baseline_config(), scale=scale or 1.0)
        lines_per_page = workload.page_size // 128
        per_inst_pages = []
        per_inst_span = []
        for sm_traces in workload.traces:
            for trace in sm_traces:
                for inst in trace:
                    if inst[0] != "m":
                        continue
                    pages = sorted({v // lines_per_page for v in inst[1]})
                    per_inst_pages.append(len(pages))
                    per_inst_span.append(pages[-1] - pages[0])
        count = len(per_inst_pages)
        table.rows.append(
            [
                abbr,
                spec.category,
                workload.touched_pages,
                sum(per_inst_pages) / count,
                sum(per_inst_span) / count,
            ]
        )
    table.notes.append(
        "irregular workloads touch many distinct, widely separated pages "
        "per warp instruction; the regular workload stays page-local"
    )
    return table


def fig04_microbench(
    concurrencies: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
    scale: float | None = None,
) -> ExperimentTable:
    """Memory latency vs number of concurrent page walks (baseline GPU)."""
    table = ExperimentTable(
        name="fig04_microbench",
        title="Figure 4: average memory access latency vs concurrent page walks",
        headers=["concurrent walks", "mean latency (cycles)", "normalized"],
    )
    baseline_latency = None
    for concurrency in concurrencies:
        workload = MicrobenchWorkload(baseline_config(), concurrency, scale=scale or 1.0)
        result = GPUSimulator(baseline_config(), workload).run()
        latency = result.mean_memory_latency
        if baseline_latency is None:
            baseline_latency = latency
        table.rows.append([concurrency, latency, latency / baseline_latency])
    table.notes.append("paper: ~4x latency at 256 concurrent walks on an A2000")
    return table


def fig05_ptw_scaling(
    abbrs: Sequence[str] | None = None,
    ptw_counts: Sequence[int] = (32, 64, 128, 256, 512, 1024),
    scale: float | None = None,
) -> ExperimentTable:
    """Speedup of scaling hardware PTWs (normalized to 32 PTWs)."""
    abbrs = list(abbrs or ALL_ABBRS)
    headers = ["workload"] + [f"{n} PTWs" for n in ptw_counts] + ["Ideal"]
    table = ExperimentTable(
        name="fig05_ptw_scaling",
        title="Figure 5: speedup with increasing PTWs (norm. to 32 PTWs)",
        headers=headers,
    )
    sweep_configs = [baseline_config()] + [
        baseline_config() if n == 32 else scaled_ptw_config(n) for n in ptw_counts
    ] + [ideal_config()]
    runner = _prefetch(sweep_configs, abbrs, scale=scale)
    per_config: dict[str, list[float]] = {h: [] for h in headers[1:]}
    for abbr in abbrs:
        base = runner.run_cached(baseline_config(), abbr, scale=scale)
        row: list = [abbr]
        for n in ptw_counts:
            config = baseline_config() if n == 32 else scaled_ptw_config(n)
            speedup = runner.run_cached(config, abbr, scale=scale).speedup_over(base)
            row.append(speedup)
            per_config[f"{n} PTWs"].append(speedup)
        ideal = runner.run_cached(ideal_config(), abbr, scale=scale).speedup_over(base)
        row.append(ideal)
        per_config["Ideal"].append(ideal)
        table.rows.append(row)
    table.rows.append(
        ["geomean"] + [geomean(per_config[h]) for h in headers[1:]]
    )
    irregular = [a for a in abbrs if get_spec(a).is_irregular]
    if irregular:
        idx = [abbrs.index(a) for a in irregular]
        table.rows.append(
            ["geomean (irregular)"]
            + [geomean([per_config[h][i] for i in idx]) for h in headers[1:]]
        )
    table.notes.append("paper: ideal = 2.58x average, 4.84x for irregular workloads")
    return table


def fig06_prior_techniques(
    abbrs: Sequence[str] | None = None,
    ptw_counts: Sequence[int] = (32, 128, 512),
    scale: float | None = None,
) -> ExperimentTable:
    """PTW scaling under (a) NHA coalescing and (b) 2MB large pages."""
    abbrs = list(abbrs or SWEEP_ABBRS)
    table = ExperimentTable(
        name="fig06_prior_techniques",
        title="Figure 6: PTW contention persists under NHA and 2MB pages",
        headers=["technique"] + [f"{n} PTWs" for n in ptw_counts],
    )
    nha_configs = [nha_config()] + [
        nha_config()
        if n == 32
        else scaled_ptw_config(n).with_ptw(nha_coalescing=True)
        for n in ptw_counts
    ]
    large_configs = [
        (baseline_config() if n == 32 else scaled_ptw_config(n)).with_page_size(
            PAGE_SIZE_2M
        )
        for n in ptw_counts
    ]
    runner = _prefetch(
        nha_configs,
        abbrs,
        scale=scale,
        extra=matrix_points(
            large_configs,
            abbrs,
            scale=scale,
            footprint_scale=LARGE_PAGE_FOOTPRINT_SCALE,
        ),
    )
    # (a) NHA + scaling.
    speedups_nha: dict[int, list[float]] = {n: [] for n in ptw_counts}
    for abbr in abbrs:
        nha_base = runner.run_cached(nha_config(), abbr, scale=scale)
        for n in ptw_counts:
            config = nha_config() if n == 32 else scaled_ptw_config(n).with_ptw(
                nha_coalescing=True
            )
            speedups_nha[n].append(
                runner.run_cached(config, abbr, scale=scale).speedup_over(nha_base)
            )
    table.rows.append(
        ["NHA coalescing (a)"] + [geomean(speedups_nha[n]) for n in ptw_counts]
    )
    # (b) 2MB pages + scaling (footprints scaled past L2 TLB coverage).
    speedups_2m: dict[int, list[float]] = {n: [] for n in ptw_counts}
    for abbr in abbrs:
        base_2m = runner.run_cached(
            baseline_config().with_page_size(PAGE_SIZE_2M),
            abbr,
            scale=scale,
            footprint_scale=LARGE_PAGE_FOOTPRINT_SCALE,
        )
        for n in ptw_counts:
            config = (
                baseline_config() if n == 32 else scaled_ptw_config(n)
            ).with_page_size(PAGE_SIZE_2M)
            speedups_2m[n].append(
                runner.run_cached(
                    config,
                    abbr,
                    scale=scale,
                    footprint_scale=LARGE_PAGE_FOOTPRINT_SCALE,
                ).speedup_over(base_2m)
            )
    table.rows.append(
        ["2MB pages (b)"] + [geomean(speedups_2m[n]) for n in ptw_counts]
    )
    table.notes.append(
        "speedups normalized to 32 PTWs *within* each technique: extra "
        "walkers still help, so contention is not solved by either"
    )
    return table


def fig07_latency_breakdown(
    abbrs: Sequence[str] | None = None,
    ptw_counts: Sequence[int] = (32, 128, 512),
    scale: float | None = None,
) -> ExperimentTable:
    """Walk-latency breakdown (queueing vs access) as PTWs scale."""
    abbrs = list(abbrs or SWEEP_ABBRS)
    table = ExperimentTable(
        name="fig07_latency_breakdown",
        title="Figure 7: page-walk latency breakdown vs number of PTWs",
        headers=[
            "PTWs",
            "mean queueing (cycles)",
            "mean access (cycles)",
            "queueing share",
        ],
    )
    sweep_configs = [
        baseline_config() if n == 32 else scaled_ptw_config(n) for n in ptw_counts
    ] + [ideal_config()]
    runner = _prefetch(sweep_configs, abbrs, scale=scale)
    for n in list(ptw_counts) + ["ideal"]:
        if n == "ideal":
            config = ideal_config()
        else:
            config = baseline_config() if n == 32 else scaled_ptw_config(n)
        queueing, access = [], []
        for abbr in abbrs:
            result = runner.run_cached(config, abbr, scale=scale)
            queueing.append(result.walk_queueing)
            access.append(result.walk_access)
        q = sum(queueing) / len(queueing)
        a = sum(access) / len(access)
        table.rows.append([n, q, a, q / (q + a)])
    table.notes.append("paper: queueing is ~95% of walk latency at 32 PTWs")
    return table


def fig08_stall_breakdown(
    abbrs: Sequence[str] | None = None, scale: float | None = None
) -> ExperimentTable:
    """Warp-scheduler cycle breakdown on the baseline GPU."""
    abbrs = list(abbrs or ALL_ABBRS)
    table = ExperimentTable(
        name="fig08_stall_breakdown",
        title="Figure 8: warp scheduler cycles (baseline)",
        headers=["workload", "category", "issued", "memory/scoreboard stall"],
    )
    runner = _prefetch([baseline_config()], abbrs, scale=scale)
    for abbr in abbrs:
        result = runner.run_cached(baseline_config(), abbr, scale=scale)
        table.rows.append(
            [
                abbr,
                get_spec(abbr).category,
                result.issued_fraction,
                result.stall_fraction,
            ]
        )
    table.notes.append("paper: ~90% of cycles stall for irregular workloads")
    return table


def fig12_ptw_mshr_scaling(
    abbrs: Sequence[str] | None = None,
    factors: Sequence[int] = (1, 2, 4, 8),
    scale: float | None = None,
    page_size: int | None = None,
) -> ExperimentTable:
    """Scaling PTWs vs MSHRs vs both (normalized to 32 PTW / 128 MSHR)."""
    abbrs = list(abbrs or SWEEP_ABBRS)
    large = page_size == PAGE_SIZE_2M
    footprint_scale = LARGE_PAGE_FOOTPRINT_SCALE if large else 1.0

    def with_page(config: GPUConfig) -> GPUConfig:
        return config.with_page_size(page_size) if page_size else config

    table = ExperimentTable(
        name=f"fig12_ptw_mshr_scaling{'_2mb' if large else '_64kb'}",
        title=(
            "Figure 12: scaling PTWs and L2 TLB MSHRs "
            f"({'2MB' if large else '64KB'} pages, geomean over "
            f"{len(abbrs)} irregular workloads)"
        ),
        headers=["scaling factor", "PTWs only", "MSHRs only", "PTWs+MSHRs"],
    )
    base_config = with_page(baseline_config())

    def factor_configs(factor: int) -> tuple[GPUConfig, GPUConfig, GPUConfig]:
        return (
            with_page(
                baseline_config().with_ptw(
                    num_walkers=32 * factor, pwb_entries=64 * factor
                )
            ),
            with_page(scaled_mshr_config(128 * factor)),
            with_page(scaled_ptw_config(32 * factor)),
        )

    sweep_configs = [base_config] + [
        config for factor in factors for config in factor_configs(factor)
    ]
    runner = _prefetch(
        sweep_configs, abbrs, scale=scale, footprint_scale=footprint_scale
    )
    for factor in factors:
        ptws_only, mshrs_only, both = [], [], []
        cfg_ptw, cfg_mshr, cfg_both = factor_configs(factor)
        for abbr in abbrs:
            base = runner.run_cached(
                base_config, abbr, scale=scale, footprint_scale=footprint_scale
            )
            ptws_only.append(
                runner.run_cached(
                    cfg_ptw, abbr, scale=scale, footprint_scale=footprint_scale
                ).speedup_over(base)
            )
            mshrs_only.append(
                runner.run_cached(
                    cfg_mshr, abbr, scale=scale, footprint_scale=footprint_scale
                ).speedup_over(base)
            )
            both.append(
                runner.run_cached(
                    cfg_both, abbr, scale=scale, footprint_scale=footprint_scale
                ).speedup_over(base)
            )
        table.rows.append(
            [f"{factor}x", geomean(ptws_only), geomean(mshrs_only), geomean(both)]
        )
    table.notes.append(
        "paper: scaling either resource alone falls well short of scaling both"
    )
    return table


# ----------------------------------------------------------------------
# Main evaluation figures
# ----------------------------------------------------------------------
def fig16_overall_speedup(
    abbrs: Sequence[str] | None = None, scale: float | None = None
) -> ExperimentTable:
    """The headline comparison: all techniques over the baseline."""
    abbrs = list(abbrs or ALL_ABBRS)
    configs = figure16_configs()
    table = ExperimentTable(
        name="fig16_overall_speedup",
        title="Figure 16: speedup over the 32-PTW baseline",
        headers=["workload"] + list(configs),
    )
    runner = _prefetch(
        [baseline_config(), *configs.values()], abbrs, scale=scale
    )
    per_config: dict[str, list[float]] = {label: [] for label in configs}
    for abbr in abbrs:
        base = runner.run_cached(baseline_config(), abbr, scale=scale)
        row: list = [abbr]
        for label, config in configs.items():
            speedup = runner.run_cached(config, abbr, scale=scale).speedup_over(base)
            row.append(speedup)
            per_config[label].append(speedup)
        table.rows.append(row)
    table.rows.append(["geomean"] + [geomean(per_config[l]) for l in configs])
    irregular = [i for i, a in enumerate(abbrs) if get_spec(a).is_irregular]
    if irregular:
        table.rows.append(
            ["geomean (irregular)"]
            + [geomean([per_config[l][i] for i in irregular]) for l in configs]
        )
    table.notes.append(
        "paper: SoftWalker 2.24x average (3.94x irregular); NHA 1.22x; FS-HPT 1.13x"
    )
    return table


def fig17_mshr_failures(
    abbrs: Sequence[str] | None = None, scale: float | None = None
) -> ExperimentTable:
    """L2 TLB MSHR-failure reduction from In-TLB MSHR."""
    abbrs = list(abbrs or IRREGULAR_ABBRS)
    table = ExperimentTable(
        name="fig17_mshr_failures",
        title="Figure 17: L2 TLB MSHR failure reduction with In-TLB MSHR",
        headers=["workload", "baseline failures", "SoftWalker failures", "reduction"],
    )
    runner = _prefetch(
        [baseline_config(), softwalker_config()], abbrs, scale=scale
    )
    reductions = []
    for abbr in abbrs:
        base = runner.run_cached(baseline_config(), abbr, scale=scale)
        soft = runner.run_cached(softwalker_config(), abbr, scale=scale)
        before, after = base.mshr_failures, soft.mshr_failures
        reduction = (before - after) / before if before else 0.0
        reductions.append(reduction)
        table.rows.append([abbr, before, after, reduction])
    table.rows.append(["mean", "", "", sum(reductions) / len(reductions)])
    table.notes.append("paper: 95.3% of failures eliminated on average; spmv ~65%")
    return table


def fig18_walk_latency(
    abbrs: Sequence[str] | None = None, scale: float | None = None
) -> ExperimentTable:
    """Normalized page-walk latency (queueing share in parentheses)."""
    abbrs = list(abbrs or ALL_ABBRS)
    configs = {
        "NHA": nha_config(),
        "FS-HPT": fshpt_config(),
        "SoftWalker": softwalker_config(),
    }
    table = ExperimentTable(
        name="fig18_walk_latency",
        title="Figure 18: page-walk latency normalized to baseline",
        headers=["workload", "baseline (cycles)", "baseline queue share"]
        + [f"{label} (norm.)" for label in configs],
    )
    runner = _prefetch(
        [baseline_config(), *configs.values()], abbrs, scale=scale
    )
    normalized: dict[str, list[float]] = {label: [] for label in configs}
    for abbr in abbrs:
        base = runner.run_cached(baseline_config(), abbr, scale=scale)
        row: list = [abbr, base.walk_latency, base.queueing_fraction]
        for label, config in configs.items():
            result = runner.run_cached(config, abbr, scale=scale)
            norm = result.walk_latency / base.walk_latency if base.walk_latency else 0
            row.append(norm)
            normalized[label].append(norm)
        table.rows.append(row)
    table.rows.append(
        ["mean", "", ""]
        + [sum(normalized[l]) / len(normalized[l]) for l in configs]
    )
    table.notes.append(
        "paper: SoftWalker cuts walk latency 72.8%; NHA 20%; FS-HPT 16%"
    )
    return table


def fig19_stall_reduction(
    abbrs: Sequence[str] | None = None, scale: float | None = None
) -> ExperimentTable:
    """Warp-scheduler stall-cycle reduction under SoftWalker."""
    abbrs = list(abbrs or ALL_ABBRS)
    table = ExperimentTable(
        name="fig19_stall_reduction",
        title="Figure 19: stall-cycle reduction vs baseline",
        headers=["workload", "category", "baseline stalls", "SoftWalker stalls", "reduction"],
    )
    runner = _prefetch(
        [baseline_config(), softwalker_config()], abbrs, scale=scale
    )
    irregular_reductions = []
    for abbr in abbrs:
        base = runner.run_cached(baseline_config(), abbr, scale=scale)
        soft = runner.run_cached(softwalker_config(), abbr, scale=scale)
        reduction = (
            (base.stall_cycles - soft.stall_cycles) / base.stall_cycles
            if base.stall_cycles
            else 0.0
        )
        if get_spec(abbr).is_irregular:
            irregular_reductions.append(reduction)
        table.rows.append(
            [abbr, get_spec(abbr).category, base.stall_cycles, soft.stall_cycles, reduction]
        )
    table.rows.append(
        ["mean (irregular)", "", "", "",
         sum(irregular_reductions) / len(irregular_reductions)]
    )
    table.notes.append("paper: 71% stall reduction for irregular workloads")
    return table


def fig20_l2_miss_rate(
    abbrs: Sequence[str] | None = None, scale: float | None = None
) -> ExperimentTable:
    """L2 data-cache miss rate: baseline vs SoftWalker."""
    abbrs = list(abbrs or IRREGULAR_ABBRS)
    table = ExperimentTable(
        name="fig20_l2_miss_rate",
        title="Figure 20: L2 data cache miss rate",
        headers=["workload", "baseline", "SoftWalker", "delta"],
    )
    runner = _prefetch(
        [baseline_config(), softwalker_config()], abbrs, scale=scale
    )
    for abbr in abbrs:
        base = runner.run_cached(baseline_config(), abbr, scale=scale)
        soft = runner.run_cached(softwalker_config(), abbr, scale=scale)
        table.rows.append(
            [
                abbr,
                base.l2_cache_miss_rate,
                soft.l2_cache_miss_rate,
                soft.l2_cache_miss_rate - base.l2_cache_miss_rate,
            ]
        )
    table.notes.append("paper: miss rate essentially unchanged by SoftWalker traffic")
    return table


# ----------------------------------------------------------------------
# Cost and sensitivity studies
# ----------------------------------------------------------------------
def fig15_area_tradeoff(
    abbrs: Sequence[str] | None = None,
    ptw_counts: Sequence[int] = (32, 64, 128, 192),
    port_counts: Sequence[int] = (1, 2, 8, 18),
    scale: float | None = None,
) -> ExperimentTable:
    """Speedup vs relative area for hardware scaling and SoftWalker."""
    abbrs = list(abbrs or SWEEP_ABBRS)
    model = PTWAreaModel()
    table = ExperimentTable(
        name="fig15_area_tradeoff",
        title="Figure 15: speedup vs area overhead (norm. to 32 PTWs / 1 port)",
        headers=["configuration", "PWB ports", "relative area", "speedup"],
    )
    runner = _prefetch(
        [baseline_config(), softwalker_config()]
        + [
            scaled_ptw_config(n, pwb_ports=ports)
            for n in ptw_counts
            for ports in port_counts
        ],
        abbrs,
        scale=scale,
    )

    def mean_speedup(config: GPUConfig) -> float:
        values = []
        for abbr in abbrs:
            base = runner.run_cached(baseline_config(), abbr, scale=scale)
            values.append(
                runner.run_cached(config, abbr, scale=scale).speedup_over(base)
            )
        return geomean(values)

    for n in ptw_counts:
        for ports in port_counts:
            config = scaled_ptw_config(n, pwb_ports=ports)
            table.rows.append(
                [f"{n} PTWs", ports, model.relative_area(n, ports), mean_speedup(config)]
            )
    table.rows.append(
        [
            "SoftWalker",
            "-",
            softwalker_relative_area(softwalker_config(), model),
            mean_speedup(softwalker_config()),
        ]
    )
    table.notes.append(
        "paper: within a relative-area budget of ~16-64, hardware scaling "
        "reaches 1.1-2.1x while SoftWalker exceeds 2.6x"
    )
    return table


def fig21_iso_area(
    abbrs: Sequence[str] | None = None, scale: float | None = None
) -> ExperimentTable:
    """SoftWalker vs an iso-area 128-PTW baseline, +/- In-TLB MSHR."""
    abbrs = list(abbrs or IRREGULAR_ABBRS)
    configs = {
        "32 PTWs + In-TLB": baseline_config().derive(hw_in_tlb_mshr=True),
        "128 PTWs": scaled_ptw_config(128),
        "128 PTWs + In-TLB": scaled_ptw_config(128).derive(hw_in_tlb_mshr=True),
        "SW w/o In-TLB": softwalker_config(in_tlb_mshr_entries=0),
        "SoftWalker": softwalker_config(),
    }
    table = ExperimentTable(
        name="fig21_iso_area",
        title="Figure 21: iso-area comparison (norm. to 32-PTW baseline)",
        headers=["workload"] + list(configs),
    )
    runner = _prefetch(
        [baseline_config(), *configs.values()], abbrs, scale=scale
    )
    per_config: dict[str, list[float]] = {label: [] for label in configs}
    for abbr in abbrs:
        base = runner.run_cached(baseline_config(), abbr, scale=scale)
        row: list = [abbr]
        for label, config in configs.items():
            speedup = runner.run_cached(config, abbr, scale=scale).speedup_over(base)
            row.append(speedup)
            per_config[label].append(speedup)
        table.rows.append(row)
    table.rows.append(["geomean"] + [geomean(per_config[l]) for l in configs])
    table.notes.append(
        "paper: SoftWalker beats the iso-area 128-PTW design by ~18.5% on "
        "irregular workloads; In-TLB alone does not help few-walker designs"
    )
    return table


def fig22_l2tlb_latency(
    abbrs: Sequence[str] | None = None,
    latencies: Sequence[int] = (40, 80, 120, 160, 200),
    scale: float | None = None,
) -> ExperimentTable:
    """SoftWalker speedup sensitivity to L2 TLB access latency."""
    abbrs = list(abbrs or SWEEP_ABBRS)
    table = ExperimentTable(
        name="fig22_l2tlb_latency",
        title="Figure 22: SoftWalker speedup vs L2 TLB latency",
        headers=["L2 TLB latency (cycles)", "speedup over baseline"],
    )
    runner = _prefetch(
        [baseline_config()]
        + [softwalker_config().with_l2_tlb(latency=latency) for latency in latencies],
        abbrs,
        scale=scale,
    )
    for latency in latencies:
        speedups = []
        for abbr in abbrs:
            # The paper normalizes every point to the *default* baseline:
            # the sweep isolates SoftWalker's SM<->L2TLB communication
            # cost, which scales with this latency.
            base = runner.run_cached(baseline_config(), abbr, scale=scale)
            soft = runner.run_cached(
                softwalker_config().with_l2_tlb(latency=latency), abbr, scale=scale
            )
            speedups.append(soft.speedup_over(base))
        table.rows.append([latency, geomean(speedups)])
    table.notes.append(
        "paper: 2.31x at 40 cycles, degrading gracefully to 2.07x at 200"
    )
    return table


def fig23_pt_latency(
    abbrs: Sequence[str] | None = None,
    latencies: Sequence[int] = (50, 100, 200, 300, 400),
    scale: float | None = None,
) -> ExperimentTable:
    """Sensitivity to per-level page-table access latency."""
    abbrs = list(abbrs or SWEEP_ABBRS)
    table = ExperimentTable(
        name="fig23_pt_latency",
        title="Figure 23: speedup and queueing reduction vs per-level PT latency",
        headers=[
            "per-level latency (cycles)",
            "speedup over baseline",
            "queueing delay reduction",
        ],
    )
    runner = _prefetch(
        [
            config().derive(fixed_pt_level_latency=latency)
            for latency in latencies
            for config in (baseline_config, softwalker_config)
        ],
        abbrs,
        scale=scale,
    )
    for latency in latencies:
        speedups, reductions = [], []
        for abbr in abbrs:
            base = runner.run_cached(
                baseline_config().derive(fixed_pt_level_latency=latency),
                abbr,
                scale=scale,
            )
            soft = runner.run_cached(
                softwalker_config().derive(fixed_pt_level_latency=latency),
                abbr,
                scale=scale,
            )
            speedups.append(soft.speedup_over(base))
            if base.walk_queueing:
                reductions.append(
                    (base.walk_queueing - soft.walk_queueing) / base.walk_queueing
                )
        table.rows.append(
            [latency, geomean(speedups), sum(reductions) / len(reductions)]
        )
    table.notes.append("paper: speedup grows 1.6x -> 4.8x from 50 to 400 cycles")
    return table


def fig24_intlb_capacity(
    abbrs: Sequence[str] | None = None,
    capacities: Sequence[int] = (0, 128, 256, 512, 1024),
    scale: float | None = None,
) -> ExperimentTable:
    """Sensitivity to the In-TLB MSHR entry budget."""
    abbrs = list(abbrs or SWEEP_ABBRS)
    table = ExperimentTable(
        name="fig24_intlb_capacity",
        title="Figure 24: SoftWalker speedup vs max In-TLB MSHR entries",
        headers=["In-TLB MSHR entries", "speedup over baseline"],
    )
    runner = _prefetch(
        [baseline_config()]
        + [softwalker_config(in_tlb_mshr_entries=c) for c in capacities],
        abbrs,
        scale=scale,
    )
    for capacity in capacities:
        speedups = []
        for abbr in abbrs:
            base = runner.run_cached(baseline_config(), abbr, scale=scale)
            soft = runner.run_cached(
                softwalker_config(in_tlb_mshr_entries=capacity), abbr, scale=scale
            )
            speedups.append(soft.speedup_over(base))
        table.rows.append([capacity, geomean(speedups)])
    table.notes.append("paper: 1.63x / 1.88x / 2.04x / 2.12x / 2.24x for 0..1024")
    return table


def fig25_large_pages(
    abbrs: Sequence[str] | None = None, scale: float | None = None
) -> ExperimentTable:
    """SoftWalker under 2MB pages (footprints scaled past TLB coverage)."""
    abbrs = list(abbrs or SCALABLE_ABBRS)
    table = ExperimentTable(
        name="fig25_large_pages",
        title="Figure 25: speedup over baseline with 2MB pages",
        headers=["workload", "SoftWalker speedup"],
    )
    runner = _prefetch(
        [
            baseline_config().with_page_size(PAGE_SIZE_2M),
            softwalker_config().with_page_size(PAGE_SIZE_2M),
        ],
        abbrs,
        scale=scale,
        footprint_scale=LARGE_PAGE_FOOTPRINT_SCALE,
    )
    speedups = []
    for abbr in abbrs:
        base = runner.run_cached(
            baseline_config().with_page_size(PAGE_SIZE_2M),
            abbr,
            scale=scale,
            footprint_scale=LARGE_PAGE_FOOTPRINT_SCALE,
        )
        soft = runner.run_cached(
            softwalker_config().with_page_size(PAGE_SIZE_2M),
            abbr,
            scale=scale,
            footprint_scale=LARGE_PAGE_FOOTPRINT_SCALE,
        )
        speedup = soft.speedup_over(base)
        speedups.append(speedup)
        table.rows.append([abbr, speedup])
    table.rows.append(["geomean", geomean(speedups)])
    table.notes.append(
        "paper: seven of ten scalable workloads still speed up (xsb/spmv/gups 4.5-7x)"
    )
    return table


def fig26_distributor(
    abbrs: Sequence[str] | None = None, scale: float | None = None
) -> ExperimentTable:
    """Request Distributor policy comparison."""
    abbrs = list(abbrs or SWEEP_ABBRS)
    table = ExperimentTable(
        name="fig26_distributor",
        title="Figure 26: SoftWalker speedup by distributor policy",
        headers=["policy", "speedup over baseline"],
    )
    runner = _prefetch(
        [baseline_config()]
        + [softwalker_config(distributor_policy=p) for p in DistributorPolicy.ALL],
        abbrs,
        scale=scale,
    )
    for policy in DistributorPolicy.ALL:
        speedups = []
        for abbr in abbrs:
            base = runner.run_cached(baseline_config(), abbr, scale=scale)
            soft = runner.run_cached(
                softwalker_config(distributor_policy=policy), abbr, scale=scale
            )
            speedups.append(soft.speedup_over(base))
        table.rows.append([policy, geomean(speedups)])
    table.notes.append("paper: no significant difference; round-robin adopted")
    return table


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table1_comparison() -> ExperimentTable:
    """Qualitative comparison of page-walk mitigation techniques."""
    config = softwalker_config()
    sw = config.softwalker
    throughput = f"{sw.pw_threads_per_sm}x(# SMs) = {sw.pw_threads_per_sm * config.num_sms}"
    table = ExperimentTable(
        name="table1_comparison",
        title="Table 1: prior techniques vs SoftWalker",
        headers=["technique", "purpose", "approach", "flexible", "needs HW PTW", "walk throughput"],
        rows=[
            ["NHA", "reduce # page walks", "coalescing", "no", "yes", "~16x"],
            ["PW scheduling", "reduce warp divergence", "scheduling", "no", "yes", "unchanged"],
            ["FS-HPT", "remove pointer chasing", "hashed page table", "no", "yes", "unchanged"],
            ["SoftWalker", "increase walk throughput", "software threads", "yes (SW)", "no", throughput],
        ],
    )
    return table


def table3_configuration() -> ExperimentTable:
    """The simulated configuration (defaults of :func:`baseline_config`)."""
    config = baseline_config()
    table = ExperimentTable(
        name="table3_configuration",
        title="Table 3: experimental setup",
        headers=["component", "parameter"],
        rows=[
            ["# of SMs", config.num_sms],
            ["max warps per SM", config.max_warps_per_sm],
            ["L1 TLB", f"{config.l1_tlb.entries} entries, {config.l1_tlb.latency} cyc, "
                        f"{config.l1_tlb.mshr_entries} MSHRs x {config.l1_tlb.mshr_merges} merges"],
            ["L2 TLB", f"{config.l2_tlb.entries} entries, {config.l2_tlb.associativity}-way, "
                        f"{config.l2_tlb.latency} cyc, {config.l2_tlb.mshr_entries} MSHRs "
                        f"x {config.l2_tlb.mshr_merges} merges"],
            ["L1D cache", f"{config.l1d.size_bytes // 1024}KB, {config.l1d.latency} cyc"],
            ["L2D cache", f"{config.l2d.size_bytes // (1024 * 1024)}MB, {config.l2d.latency} cyc, "
                           f"{config.l2d.line_bytes}B line ({config.l2d.sector_bytes}B sector)"],
            ["DRAM", f"{config.dram.channels} channels, {config.dram.latency} cyc"],
            ["page table", f"{config.page_table.levels}-level radix, "
                            f"{config.page_table.page_size // 1024}KB pages"],
            ["PWC", f"{config.ptw.pwc_entries} entries"],
            ["PTWs", config.ptw.num_walkers],
            ["SoftWalker", f"{config.softwalker.pw_threads_per_sm} PW threads/SM, "
                            f"{config.softwalker.softpwb_entries}-entry SoftPWB, "
                            f"up to {config.softwalker.in_tlb_mshr_entries} In-TLB MSHRs"],
        ],
    )
    return table


def table4_catalog(
    abbrs: Sequence[str] | None = None, scale: float | None = None
) -> ExperimentTable:
    """The benchmark catalog with measured vs paper MPKI."""
    abbrs = list(abbrs or ALL_ABBRS)
    table = ExperimentTable(
        name="table4_catalog",
        title="Table 4: benchmarks (measured on the baseline)",
        headers=[
            "workload",
            "category",
            "footprint (MB)",
            "measured MPKI",
            "paper MPKI",
            "paper required PTWs",
        ],
    )
    runner = _prefetch([baseline_config()], abbrs, scale=scale)
    for abbr in abbrs:
        spec = get_spec(abbr)
        result = runner.run_cached(baseline_config(), abbr, scale=scale)
        table.rows.append(
            [
                abbr,
                spec.category,
                spec.footprint_mb,
                result.l2_tlb_mpki,
                spec.paper_mpki,
                spec.paper_required_ptws,
            ]
        )
    table.notes.append(
        "MPKI calibration targets the paper's ordering, not absolute values"
    )
    return table


# ----------------------------------------------------------------------
# Ablations (design choices DESIGN.md calls out)
# ----------------------------------------------------------------------
def ablation_pwb_scheduling(
    abbrs: Sequence[str] | None = None, scale: float | None = None
) -> ExperimentTable:
    """Warp-aware PWB scheduling (ref [85]) vs FCFS at 32 walkers.

    Table 1's point: scheduling reorders the queue but adds no
    throughput, so it cannot resolve contention the way SoftWalker does.
    """
    abbrs = list(abbrs or SWEEP_ABBRS)
    table = ExperimentTable(
        name="ablation_pwb_scheduling",
        title="Ablation: PWB scheduling policy (32 hardware walkers)",
        headers=["policy", "speedup over FCFS baseline"],
    )
    sm_batch = baseline_config().with_ptw(pwb_policy="sm_batch")
    soft = softwalker_config()
    runner = _prefetch([baseline_config(), sm_batch, soft], abbrs, scale=scale)
    for label, config in (
        ("fcfs", baseline_config()),
        ("sm_batch (PW scheduling)", sm_batch),
        ("SoftWalker (for reference)", soft),
    ):
        speedups = []
        for abbr in abbrs:
            base = runner.run_cached(baseline_config(), abbr, scale=scale)
            speedups.append(
                runner.run_cached(config, abbr, scale=scale).speedup_over(base)
            )
        table.rows.append([label, geomean(speedups)])
    table.notes.append(
        "scheduling reorders walks but adds no throughput: expect ~1x, "
        "far below SoftWalker"
    )
    return table


def ablation_simt_lockstep(
    abbrs: Sequence[str] | None = None, scale: float | None = None
) -> ExperimentTable:
    """PW-warp execution model: independent threads vs SIMT lockstep."""
    abbrs = list(abbrs or SWEEP_ABBRS)
    table = ExperimentTable(
        name="ablation_simt_lockstep",
        title="Ablation: PW-warp thread model",
        headers=["execution model", "speedup over baseline"],
    )
    runner = _prefetch(
        [
            baseline_config(),
            softwalker_config(),
            softwalker_config().with_softwalker(simt_lockstep=True),
        ],
        abbrs,
        scale=scale,
    )
    for label, config in (
        ("independent threads (paper)", softwalker_config()),
        ("SIMT lockstep", softwalker_config().with_softwalker(simt_lockstep=True)),
    ):
        speedups = []
        for abbr in abbrs:
            base = runner.run_cached(baseline_config(), abbr, scale=scale)
            speedups.append(
                runner.run_cached(config, abbr, scale=scale).speedup_over(base)
            )
        table.rows.append([label, geomean(speedups)])
    table.notes.append(
        "memory divergence makes lockstep warps wait for their slowest "
        "lane every level; independent threads avoid the convoy effect"
    )
    return table


def ablation_pwc_depth(
    abbrs: Sequence[str] | None = None, scale: float | None = None
) -> ExperimentTable:
    """PWC caching depth: PDE-style (min level 2) vs leaf pointers (1)."""
    abbrs = list(abbrs or SWEEP_ABBRS)
    table = ExperimentTable(
        name="ablation_pwc_depth",
        title="Ablation: Page Walk Cache depth (baseline hardware walkers)",
        headers=["PWC caches down to", "speedup over default", "mean walk access (cycles)"],
    )
    runner = _prefetch(
        [baseline_config(), baseline_config().with_ptw(pwc_min_level=1)],
        abbrs,
        scale=scale,
    )
    for label, config in (
        ("level 2 (PDE cache, default)", baseline_config()),
        ("level 1 (leaf pointers)", baseline_config().with_ptw(pwc_min_level=1)),
    ):
        speedups, accesses = [], []
        for abbr in abbrs:
            base = runner.run_cached(baseline_config(), abbr, scale=scale)
            result = runner.run_cached(config, abbr, scale=scale)
            speedups.append(result.speedup_over(base))
            accesses.append(result.walk_access)
        table.rows.append(
            [label, geomean(speedups), sum(accesses) / len(accesses)]
        )
    table.notes.append(
        "a deeper PWC shortens individual walks, but queueing — not walk "
        "length — dominates, so contention remains"
    )
    return table


def extension_baselines(
    abbrs: Sequence[str] | None = None, scale: float | None = None
) -> ExperimentTable:
    """Every Section 2.3 prior technique vs SoftWalker, side by side.

    Beyond Figure 16's comparison set, this adds the coalesced TLB
    (CoLT-style) and Avatar-style speculation so the whole related-work
    landscape is measurable from one command
    (``python -m repro figure ext-baselines``).
    """
    from repro.config import avatar_config

    abbrs = list(abbrs or SWEEP_ABBRS)
    configs = {
        "NHA": nha_config(),
        "FS-HPT": fshpt_config(),
        "CoLT (span 4)": baseline_config().derive(tlb_coalescing_span=4),
        "Avatar speculation": avatar_config(),
        "PW scheduling": baseline_config().with_ptw(pwb_policy="sm_batch"),
        "SoftWalker": softwalker_config(),
    }
    table = ExperimentTable(
        name="extension_baselines",
        title="Section 2.3 techniques vs SoftWalker (irregular subset)",
        headers=["technique", "speedup over baseline"],
    )
    runner = _prefetch(
        [baseline_config(), *configs.values()], abbrs, scale=scale
    )
    for label, config in configs.items():
        speedups = []
        for abbr in abbrs:
            base = runner.run_cached(baseline_config(), abbr, scale=scale)
            speedups.append(
                runner.run_cached(config, abbr, scale=scale).speedup_over(base)
            )
        table.rows.append([label, geomean(speedups)])
    table.notes.append(
        "irregular access + scattered frames defeat reach/speculation "
        "techniques; only added walk throughput moves the needle"
    )
    return table


def sec52_hardware_overhead() -> ExperimentTable:
    """Section 5.2 storage/area overhead arithmetic."""
    summary = hardware_overhead_summary(softwalker_config())
    table = ExperimentTable(
        name="sec52_hw_overhead",
        title="Section 5.2: SoftWalker hardware overhead",
        headers=["quantity", "value"],
        rows=[[k, v] for k, v in summary.items()],
    )
    table.notes.append(
        "paper: 1470 bits/SM of PW-warp context, 64-bit controller bitmap, "
        "1024 In-TLB pending bits, 0.0061 mm^2 control logic"
    )
    return table
