"""Parallel sweep engine: independent simulation points across processes.

A sweep matrix is a list of :class:`SweepPoint`s — (config, benchmark,
scale, footprint scale, seed) tuples.  Points are independent by
construction (the trace is deterministic in the benchmark name and
seed), so :func:`run_sweep` deduplicates them, resolves what it can from
the caller's caches, and executes the remainder either in-process or
across a ``ProcessPoolExecutor``.  Results are assembled in first-seen
point order regardless of completion order, and workers ship results
home as :meth:`~repro.gpu.gpu.SimulationResult.to_dict` payloads, so a
parallel sweep is fingerprint-identical to a serial one.

Workers inherit the parent's environment (``REPRO_TRACE`` included):
the trace exporter claims its output filename with ``O_EXCL`` atomic
creation, so concurrent workers tracing the same benchmark get distinct
files instead of racing.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.config import GPUConfig, config_fingerprint
from repro.gpu.gpu import SimulationResult
from repro.workloads.base import WorkloadSpec
from repro.workloads.catalog import get_spec

_JOBS_ENV = "REPRO_JOBS"

#: Progress callback: (point, status, done_so_far, total).  Status is
#: "cached" (served from a cache tier) or "ran" (freshly simulated).
ProgressFn = Callable[["SweepPoint", str, int, int], None]


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    value = os.environ.get(_JOBS_ENV)
    if value is None:
        return 1
    jobs = int(value)
    if jobs < 1:
        raise ValueError(f"{_JOBS_ENV} must be >= 1, got {value!r}")
    return jobs


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation of a sweep matrix.

    ``benchmark`` is always the catalog abbreviation and ``scale`` is
    always concrete (use :func:`make_point` to resolve specs and env
    defaults), so equal points compare and hash equal — the dedup and
    both cache tiers rely on that.
    """

    config: GPUConfig
    benchmark: str
    scale: float
    footprint_scale: float = 1.0
    seed: int | None = None

    def store_key(self) -> dict:
        """JSON-safe key for the persistent result store."""
        return {
            "config": config_fingerprint(self.config),
            "benchmark": self.benchmark,
            "scale": self.scale,
            "footprint_scale": self.footprint_scale,
            "seed": self.seed,
        }

    def label(self) -> str:
        parts = [self.benchmark, f"x{self.scale:g}"]
        if self.footprint_scale != 1.0:
            parts.append(f"fp{self.footprint_scale:g}")
        if self.seed is not None:
            parts.append(f"seed{self.seed}")
        return "/".join(parts)

    # ------------------------------------------------------------------
    # Serialization (same shape as :meth:`store_key`, and losslessly
    # invertible because config fingerprints are `GPUConfig.to_dict`)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return self.store_key()

    #: The serialized field set; ``from_dict`` rejects anything else.
    FIELDS = ("config", "benchmark", "scale", "footprint_scale", "seed")

    @classmethod
    def from_dict(cls, data: dict) -> "SweepPoint":
        unknown = sorted(set(data) - set(cls.FIELDS))
        if unknown:
            import difflib

            hints = []
            for name in unknown:
                close = difflib.get_close_matches(name, cls.FIELDS, n=1)
                hints.append(
                    f"{name!r}"
                    + (f" (did you mean {close[0]!r}?)" if close else "")
                )
            raise ValueError(
                f"unknown SweepPoint field(s): {', '.join(hints)}"
            )
        return cls(
            config=GPUConfig.from_dict(data["config"]),
            benchmark=str(data["benchmark"]),
            scale=float(data["scale"]),
            footprint_scale=float(data.get("footprint_scale", 1.0)),
            seed=None if data.get("seed") is None else int(data["seed"]),
        )


def make_point(
    config: GPUConfig,
    benchmark: str | WorkloadSpec,
    *,
    scale: float | None = None,
    footprint_scale: float = 1.0,
    seed: int | None = None,
) -> SweepPoint:
    """Normalise loose run arguments into a canonical :class:`SweepPoint`."""
    from repro.harness.runner import default_scale

    spec = get_spec(benchmark) if isinstance(benchmark, str) else benchmark
    return SweepPoint(
        config=config,
        benchmark=spec.abbr,
        scale=scale if scale is not None else default_scale(),
        footprint_scale=footprint_scale,
        seed=seed,
    )


def matrix_points(
    configs: Iterable[GPUConfig],
    benchmarks: Iterable[str | WorkloadSpec],
    *,
    scale: float | None = None,
    footprint_scale: float = 1.0,
    seed: int | None = None,
) -> list[SweepPoint]:
    """The full cross product, benchmark-major like the serial loops."""
    configs = list(configs)
    return [
        make_point(
            config,
            benchmark,
            scale=scale,
            footprint_scale=footprint_scale,
            seed=seed,
        )
        for benchmark in benchmarks
        for config in configs
    ]


def dedupe_points(points: Iterable[SweepPoint]) -> list[SweepPoint]:
    """Unique points in first-seen order (figures often share runs)."""
    return list(dict.fromkeys(points))


def _execute_point(point: SweepPoint) -> dict:
    """Worker entry: simulate one point, ship the result as a dict.

    Runs in a forked worker process; the dict transport (rather than a
    pickled SimulationResult) keeps the wire format identical to the
    persistent store's and exercises the same round-trip guarantee.
    """
    from repro.harness.runner import default_runner

    result = default_runner().run(
        point.config,
        point.benchmark,
        scale=point.scale,
        footprint_scale=point.footprint_scale,
        seed=point.seed,
    )
    return result.to_dict()


def run_point_supervised(
    point: SweepPoint,
    *,
    policy=None,
    heartbeat=None,
    sample_interval: int | None = None,
):
    """Execute one point under supervised slicing — the service hook.

    Unlike :func:`_execute_point` (one monolithic ``run()`` per worker),
    this drives the simulation through
    :func:`~repro.harness.supervised.run_supervised`, so the caller gets
    wall-clock watchdogs, retry with backoff, graceful degradation, and
    a per-slice ``heartbeat(sim)`` callback.  With ``sample_interval``
    set, each attempt carries a sampling
    :class:`~repro.obs.Observability` bundle (a fresh one per attempt —
    gauges cannot double-register on retries), so the heartbeat can
    read live component gauges off ``sim.obs.metrics``.

    Returns the :class:`~repro.harness.supervised.SupervisedReport`.
    """
    from repro.gpu.gpu import GPUSimulator
    from repro.harness.runner import build_workload
    from repro.harness.supervised import run_supervised
    from repro.obs import Observability

    def make_sim() -> GPUSimulator:
        obs = (
            Observability.sampling(sample_interval)
            if sample_interval
            else None
        )
        workload = build_workload(
            point.benchmark,
            point.config,
            scale=point.scale,
            footprint_scale=point.footprint_scale,
            seed=point.seed,
        )
        return GPUSimulator(point.config, workload, obs=obs)

    return run_supervised(make_sim, policy=policy, heartbeat=heartbeat)


def pool_context():
    """The multiprocessing context every harness worker pool uses.

    Fork keeps workers' view of os.environ and sys.path identical to
    the parent's (spawn/forkserver would re-import with whatever the
    interpreter start-up happens to see).  The service daemon spawns
    its job workers from this same context so they behave identically
    to sweep workers.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_sweep(
    points: Sequence[SweepPoint],
    *,
    jobs: int | None = None,
    lookup: Callable[[SweepPoint], SimulationResult | None] | None = None,
    publish: Callable[[SweepPoint, SimulationResult], None] | None = None,
    progress: ProgressFn | None = None,
    execute: Callable[[SweepPoint], dict] | None = None,
) -> dict[SweepPoint, SimulationResult]:
    """Execute a sweep matrix; returns {point: result} for every point.

    ``lookup`` is consulted once per deduplicated point before dispatch
    (the caller's memory/disk cache tiers); ``publish`` is called for
    every freshly simulated result so the caller can warm those tiers.
    With ``jobs > 1`` the misses run across a process pool; ordering of
    the returned mapping (and of ``publish`` calls) follows first-seen
    point order either way, so serial and parallel sweeps are
    indistinguishable to the caller.

    ``execute`` swaps the worker body: it takes a point and returns a
    ``SimulationResult.to_dict`` payload.  The explore driver uses this
    to run truncated-budget rungs through the supervised runner; the
    callable must be picklable (a module-level function or a
    ``functools.partial`` of one) so the process pool can ship it.
    """
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if execute is None:
        execute = _execute_point

    ordered = dedupe_points(points)
    total = len(ordered)
    results: dict[SweepPoint, SimulationResult] = {}
    pending: list[SweepPoint] = []
    done = 0
    for point in ordered:
        cached = lookup(point) if lookup is not None else None
        if cached is not None:
            results[point] = cached
            done += 1
            if progress is not None:
                progress(point, "cached", done, total)
        else:
            pending.append(point)

    def finish(point: SweepPoint, result: SimulationResult) -> None:
        nonlocal done
        results[point] = result
        if publish is not None:
            publish(point, result)
        done += 1
        if progress is not None:
            progress(point, "ran", done, total)

    if len(pending) <= 1 or jobs == 1:
        for point in pending:
            finish(point, SimulationResult.from_dict(execute(point)))
    else:
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=pool_context()
        ) as pool:
            futures = [(p, pool.submit(execute, p)) for p in pending]
            for point, future in futures:
                finish(point, SimulationResult.from_dict(future.result()))

    # Hand every requested point back in first-seen order.
    return {point: results[point] for point in ordered}
