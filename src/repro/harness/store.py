"""Persistent on-disk result store for the sweep engine.

Simulations are deterministic in their inputs — configuration,
benchmark, trace scale, footprint scale, and seed — so a finished
:class:`~repro.gpu.gpu.SimulationResult` can be keyed by a digest of
those inputs and reused across processes and invocations.  The store is
one JSON file per entry under a directory:

``<store>/<digest>.json`` -> ``{"schema": N, "key": {...}, "result": {...}}``

Entries carry a schema stamp and echo their full key, so loads are
corruption-tolerant: unparseable files, stale schema versions, and
digest collisions are *quarantined* (renamed to ``<digest>.corrupt`` so
the evidence survives for a post-mortem) and treated as misses instead
of crashing a sweep.  Writes go through a temp file + ``os.replace`` so
a crashed worker can never leave a half-written entry behind.

The store doubles as the *shared* result tier of a worker fleet: the
O_EXCL :meth:`ResultStore.claim` slots make writes single-winner when
several schedulers or sweeps share one directory, and an optional
``max_bytes`` budget evicts the oldest entries (by mtime) so the shared
tier cannot grow without bound.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from pathlib import Path
from typing import Mapping

from repro.gpu.gpu import SimulationResult

logger = logging.getLogger(__name__)

#: Bump when the entry layout or SimulationResult wire format changes:
#: old entries are then evicted on first touch instead of misread.
STORE_SCHEMA_VERSION = 1

_ENV_STORE = "REPRO_STORE"


def default_store_path() -> str | None:
    """Directory named by ``REPRO_STORE``; None disables the disk tier."""
    return os.environ.get(_ENV_STORE) or None


def canonical_key(key: Mapping) -> str:
    """Deterministic JSON encoding of a point key (sorted, no spaces)."""
    return json.dumps(key, sort_keys=True, separators=(",", ":"))


def fingerprint_digest(result: SimulationResult) -> str:
    """Stable hex digest of a result's fingerprint.

    Two results with equal digests ran bit-identically — the currency
    the sweep smoke and the parallel-vs-serial tests compare in.
    """
    return hashlib.sha256(canonical_key(result.fingerprint()).encode()).hexdigest()


class ResultStore:
    """Digest-keyed persistent cache of simulation results."""

    def __init__(self, path: str | Path, *, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None for unbounded)")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Corrupt / stale / colliding entries removed during loads
        #: (every one of these is also counted in ``quarantined``).
        self.evictions = 0
        #: Corrupt entries renamed to ``*.corrupt`` for post-mortems.
        self.quarantined = 0
        #: Healthy entries evicted to stay under the size budget.
        self.budget_evictions = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def digest(self, key: Mapping) -> str:
        return hashlib.sha256(canonical_key(key).encode()).hexdigest()

    def entry_path(self, key: Mapping) -> Path:
        return self.path / f"{self.digest(key)}.json"

    # ------------------------------------------------------------------
    # Load / store
    # ------------------------------------------------------------------
    def load(self, key: Mapping) -> SimulationResult | None:
        """The stored result for ``key``, or None (counting a miss).

        Any defect in the entry — unparseable JSON, wrong schema stamp,
        a digest collision where the echoed key differs — evicts the
        file and reports a miss rather than raising.
        """
        path = self.entry_path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(raw)
            if payload["schema"] != STORE_SCHEMA_VERSION:
                raise ValueError(f"stale schema {payload['schema']!r}")
            if canonical_key(payload["key"]) != canonical_key(key):
                raise ValueError("key mismatch (digest collision or tamper)")
            result = SimulationResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError) as defect:
            self._evict(path, reason=str(defect) or type(defect).__name__)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: Mapping, result: SimulationResult) -> Path:
        """Persist one result atomically; returns the entry path."""
        path = self.entry_path(key)
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "key": dict(key),
            "result": result.to_dict(),
        }
        self.path.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        if self.max_bytes is not None:
            self._enforce_budget(keep=path)
        return path

    # ------------------------------------------------------------------
    # Bulk iteration / snapshots (the analysis layer's loading path)
    # ------------------------------------------------------------------
    def iter_entries(self):
        """Yield ``(key_dict, result)`` for every healthy entry.

        The bulk counterpart of :meth:`load`, and what
        :meth:`repro.analysis.ResultSet.from_store` is built on.  The
        same corruption policy applies — unparseable files, stale
        schema stamps, and entries whose echoed key does not match
        their digest are quarantined and skipped — but hit/miss
        telemetry is untouched: walking the store for analysis is not
        cache traffic.  Iteration order is deterministic (sorted by
        digest).
        """
        if not self.path.is_dir():
            return
        for path in sorted(self.path.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                if payload["schema"] != STORE_SCHEMA_VERSION:
                    raise ValueError(f"stale schema {payload['schema']!r}")
                key = payload["key"]
                if self.digest(key) != path.stem:
                    raise ValueError("key does not match entry digest")
                result = SimulationResult.from_dict(payload["result"])
            except OSError:
                continue  # raced with an eviction; nothing to read
            except (ValueError, KeyError, TypeError) as defect:
                self._evict(path, reason=str(defect) or type(defect).__name__)
                continue
            yield key, result

    def keys(self) -> list[dict]:
        """Key dicts of every healthy entry (sorted by digest)."""
        return [key for key, _ in self.iter_entries()]

    def snapshot(self, destination: str | Path) -> "ResultStore":
        """Copy every healthy entry into a fresh store at ``destination``.

        Re-stores through the normal write path (schema stamp, temp
        file + rename), so the snapshot is a first-class store: it can
        be diffed with ``repro report --against``, archived as a
        baseline, or carried to another host.  Corrupt entries are
        quarantined in *this* store and excluded from the snapshot.
        """
        target = ResultStore(destination)
        if target.path.resolve() == self.path.resolve():
            raise ValueError("snapshot destination must differ from the store path")
        for key, result in self.iter_entries():
            target.store(key, result)
        return target

    # ------------------------------------------------------------------
    # Shared-tier coordination (claims + size budget)
    # ------------------------------------------------------------------
    def claim_path(self, key: Mapping) -> Path:
        return self.path / f"{self.digest(key)}.claim"

    def claim(self, key: Mapping, *, owner: str = "anon", ttl: float = 60.0) -> bool:
        """Try to become the single writer for ``key``'s entry.

        O_EXCL slot creation makes the race single-winner across
        processes and hosts sharing the directory; a slot whose ``ttl``
        has lapsed (its writer died mid-persist) is broken and
        re-claimed.  Returns False when someone else holds a live claim
        — the caller skips its write, losing nothing because entries
        for equal keys are byte-identical by construction.
        """
        now = time.time()
        path = self.claim_path(key)
        payload = json.dumps(
            {"owner": owner, "claimed_at": now, "expires_at": now + ttl}
        ).encode("utf-8")
        self.path.mkdir(parents=True, exist_ok=True)
        for attempt in range(2):
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                if attempt:
                    return False
                try:
                    stale = json.loads(path.read_text(encoding="utf-8"))
                    expired = float(stale.get("expires_at", 0)) <= now
                except (OSError, ValueError, TypeError):
                    expired = True  # unreadable slot: treat as dead
                if not expired:
                    return False
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            return True
        return False

    def release_claim(self, key: Mapping) -> bool:
        """Drop our claim slot; False if it was already gone."""
        try:
            self.claim_path(key).unlink()
            return True
        except OSError:
            return False

    def _enforce_budget(self, *, keep: Path | None = None) -> int:
        """Evict oldest entries (by mtime) until under ``max_bytes``.

        The just-written entry (``keep``) is never evicted — a budget
        smaller than one entry must not turn every store into a no-op.
        Returns how many entries were removed.
        """
        if self.max_bytes is None or not self.path.is_dir():
            return 0
        entries = []
        total = 0
        for entry in self.path.glob("*.json"):
            try:
                stat = entry.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, entry))
            total += stat.st_size
        removed = 0
        entries.sort()
        for _mtime, size, entry in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and entry == keep:
                continue
            try:
                entry.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
            self.budget_evictions += 1
            logger.info("evicted %s to stay under the store budget", entry.name)
        return removed

    def _evict(self, path: Path, *, reason: str = "corrupt entry") -> None:
        # Quarantine keeps sweeps alive through corruption without
        # destroying the evidence: the bad entry moves aside as
        # ``<digest>.corrupt`` (a later corruption of the same digest
        # overwrites it — one corpse per entry is plenty), and the load
        # path sees a plain miss.
        logger.warning(
            "quarantining corrupt result-store entry %s: %s", path, reason
        )
        corpse = path.with_suffix(".corrupt")
        try:
            os.replace(path, corpse)
            self.quarantined += 1
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self.evictions += 1

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.path.is_dir():
            return 0
        return sum(1 for _ in self.path.glob("*.json"))

    def size_bytes(self) -> int:
        """Total on-disk footprint of every entry (bytes)."""
        if not self.path.is_dir():
            return 0
        total = 0
        for entry in self.path.glob("*.json"):
            try:
                total += entry.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every entry (plus quarantine corpses and stale claim
        slots); returns how many *entries* were removed."""
        removed = 0
        if self.path.is_dir():
            for entry in self.path.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
            for extra in ("*.corrupt", "*.claim"):
                for leftover in self.path.glob(extra):
                    try:
                        leftover.unlink()
                    except OSError:
                        pass
        return removed

    def info(self) -> dict:
        """Telemetry mirror of the in-memory tier's ``cache_info()``."""
        return {
            "path": str(self.path),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "budget_evictions": self.budget_evictions,
            "max_bytes": self.max_bytes,
            "entries": len(self),
            "size_bytes": self.size_bytes(),
        }
