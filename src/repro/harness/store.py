"""Persistent on-disk result store for the sweep engine.

Simulations are deterministic in their inputs — configuration,
benchmark, trace scale, footprint scale, and seed — so a finished
:class:`~repro.gpu.gpu.SimulationResult` can be keyed by a digest of
those inputs and reused across processes and invocations.  The store is
one JSON file per entry under a directory:

``<store>/<digest>.json`` -> ``{"schema": N, "key": {...}, "result": {...}}``

Entries carry a schema stamp and echo their full key, so loads are
corruption-tolerant: unparseable files, stale schema versions, and
digest collisions are silently evicted (deleted and treated as misses)
instead of crashing a sweep.  Writes go through a temp file +
``os.replace`` so a crashed worker can never leave a half-written entry
behind.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Mapping

from repro.gpu.gpu import SimulationResult

logger = logging.getLogger(__name__)

#: Bump when the entry layout or SimulationResult wire format changes:
#: old entries are then evicted on first touch instead of misread.
STORE_SCHEMA_VERSION = 1

_ENV_STORE = "REPRO_STORE"


def default_store_path() -> str | None:
    """Directory named by ``REPRO_STORE``; None disables the disk tier."""
    return os.environ.get(_ENV_STORE) or None


def canonical_key(key: Mapping) -> str:
    """Deterministic JSON encoding of a point key (sorted, no spaces)."""
    return json.dumps(key, sort_keys=True, separators=(",", ":"))


def fingerprint_digest(result: SimulationResult) -> str:
    """Stable hex digest of a result's fingerprint.

    Two results with equal digests ran bit-identically — the currency
    the sweep smoke and the parallel-vs-serial tests compare in.
    """
    return hashlib.sha256(canonical_key(result.fingerprint()).encode()).hexdigest()


class ResultStore:
    """Digest-keyed persistent cache of simulation results."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Corrupt / stale / colliding entries deleted during loads.
        self.evictions = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def digest(self, key: Mapping) -> str:
        return hashlib.sha256(canonical_key(key).encode()).hexdigest()

    def entry_path(self, key: Mapping) -> Path:
        return self.path / f"{self.digest(key)}.json"

    # ------------------------------------------------------------------
    # Load / store
    # ------------------------------------------------------------------
    def load(self, key: Mapping) -> SimulationResult | None:
        """The stored result for ``key``, or None (counting a miss).

        Any defect in the entry — unparseable JSON, wrong schema stamp,
        a digest collision where the echoed key differs — evicts the
        file and reports a miss rather than raising.
        """
        path = self.entry_path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(raw)
            if payload["schema"] != STORE_SCHEMA_VERSION:
                raise ValueError(f"stale schema {payload['schema']!r}")
            if canonical_key(payload["key"]) != canonical_key(key):
                raise ValueError("key mismatch (digest collision or tamper)")
            result = SimulationResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError) as defect:
            self._evict(path, reason=str(defect) or type(defect).__name__)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: Mapping, result: SimulationResult) -> Path:
        """Persist one result atomically; returns the entry path."""
        path = self.entry_path(key)
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "key": dict(key),
            "result": result.to_dict(),
        }
        self.path.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    def _evict(self, path: Path, *, reason: str = "corrupt entry") -> None:
        # Eviction keeps sweeps alive through corruption, but a store
        # that quietly rots is a store nobody trusts — say which file
        # went bad and why, then count it.
        logger.warning("evicting corrupt result-store entry %s: %s", path, reason)
        try:
            path.unlink()
        except OSError:
            pass
        self.evictions += 1

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.path.is_dir():
            return 0
        return sum(1 for _ in self.path.glob("*.json"))

    def size_bytes(self) -> int:
        """Total on-disk footprint of every entry (bytes)."""
        if not self.path.is_dir():
            return 0
        total = 0
        for entry in self.path.glob("*.json"):
            try:
                total += entry.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.path.is_dir():
            for entry in self.path.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def info(self) -> dict:
        """Telemetry mirror of the in-memory tier's ``cache_info()``."""
        return {
            "path": str(self.path),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "entries": len(self),
            "size_bytes": self.size_bytes(),
        }
