"""Supervised simulation runs: watchdog, retry, checkpoint, degrade.

``run_supervised`` drives a simulator in bounded event slices instead of
one monolithic ``run()`` call, which buys four properties a long
unattended experiment needs:

* a **wall-clock watchdog** — a hung or pathologically slow attempt is
  cut off between slices, not discovered the next morning;
* **periodic checkpoints** — a :class:`~repro.resilience.Checkpoint`
  every N slices, so a retry resumes from the last good snapshot
  instead of cycle zero (resumed runs are bit-identical to
  uninterrupted ones);
* **bounded retry with exponential backoff** — watchdog timeouts are
  retried up to ``max_retries`` times (sleeping ``backoff_base * 2^k``
  between attempts, for hosts that are transiently overloaded);
* **graceful degradation** — when the event budget or every retry is
  exhausted, the caller gets a partial
  :class:`~repro.gpu.gpu.SimulationResult` (``complete=False``) holding
  everything the run did measure, rather than an exception and nothing.

Invariant violations are *never* retried or degraded away: they mean
the machine state is wrong, and the :class:`InvariantViolation` (with
its component dump) propagates to the caller.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.gpu.gpu import GPUSimulator, SimulationResult, SimulationTruncated
from repro.obs.bench import perf_metadata
from repro.resilience.checkpoint import Checkpoint
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.invariants import InvariantChecker


class WatchdogTimeout(RuntimeError):
    """An attempt exceeded the supervision policy's wall-clock limit."""


class AttemptAbandoned(RuntimeError):
    """Raised *by a heartbeat callback* to abort the run immediately.

    The fleet's lease-lost plumbing: a worker whose heartbeat learns
    its lease went stale (the scheduler requeued the job for someone
    else) raises this to stop burning cycles on a result nobody will
    accept.  It propagates straight out of :func:`run_supervised` —
    never retried, never degraded into a partial result.
    """


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs for one supervised run."""

    #: Events per engine slice; the watchdog and checkpoint cadence are
    #: both quantised to this.
    slice_events: int = 20_000
    #: Total event budget per attempt (None = unlimited).
    max_events: int | None = None
    #: Wall-clock seconds per attempt (None = no watchdog).
    wall_clock_limit: float | None = None
    #: Take a checkpoint every this many slices (0 = off).
    checkpoint_every: int = 0
    #: Attach an invariant audit every this many events (0 = off).
    audit_every: int = 0
    #: Watchdog-timeout retries before giving up.
    max_retries: int = 2
    #: First retry sleeps this many seconds, doubling each retry.
    backoff_base: float = 0.0
    #: On exhausted budget/retries, return a partial result instead of
    #: raising.
    degrade: bool = True
    #: Call the heartbeat hook every this many slices (1 = every slice).
    #: Raising it thins lease-refresh/progress traffic for jobs whose
    #: slices are much finer than anyone needs to observe.
    heartbeat_every: int = 1

    def __post_init__(self) -> None:
        if self.slice_events < 1:
            raise ValueError("slice_events must be >= 1")
        if self.max_retries < 0 or self.backoff_base < 0:
            raise ValueError("max_retries and backoff_base must be >= 0")
        if self.heartbeat_every < 1:
            raise ValueError("heartbeat_every must be >= 1")


@dataclass
class SupervisedReport:
    """What a supervised run did, alongside its result."""

    result: SimulationResult
    #: Attempts driven (1 = no retries needed).
    attempts: int
    #: Checkpoints captured across all attempts.
    checkpoints: int
    #: True when the result is partial (degradation kicked in).
    degraded: bool
    #: Stringified failure per abandoned attempt, oldest first.
    failures: tuple[str, ...] = ()
    #: Invariant audits performed (0 when auditing was off).
    audits: int = 0
    #: Faults injected (0 when no plan was armed).
    faults_injected: int = 0
    #: Wall-clock seconds across every attempt (backoff sleeps included).
    wall_seconds: float = 0.0

    @property
    def retries(self) -> int:
        return self.attempts - 1


@dataclass
class _RunState:
    checkpoint: Checkpoint | None = None
    checkpoints: int = 0
    failures: list[str] = field(default_factory=list)


def run_supervised(
    make_sim: Callable[[], GPUSimulator],
    *,
    policy: SupervisionPolicy | None = None,
    plan: FaultPlan | None = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    heartbeat: Callable[[GPUSimulator], None] | None = None,
) -> SupervisedReport:
    """Drive ``make_sim()`` to completion under a supervision policy.

    Args:
        make_sim: builds a *fresh* simulator; called once per
            from-scratch attempt (restored attempts come from the last
            checkpoint instead).
        policy: supervision knobs; defaults to
            :class:`SupervisionPolicy()`.
        plan: optional fault plan, armed on every fresh simulator (a
            restored checkpoint already carries its armed injector).
        clock/sleep: injectable time sources so tests can fake the
            watchdog and skip real backoff sleeps.
        heartbeat: called with the live simulator after every completed
            slice — the hook the service daemon uses to stream progress
            (cycle, warps remaining, sampled gauges) to subscribers
            while a job runs.
    """
    policy = policy if policy is not None else SupervisionPolicy()
    state = _RunState()
    attempt = 0
    started = clock()
    while True:
        attempt += 1
        if state.checkpoint is not None:
            sim = state.checkpoint.restore()
        else:
            sim = _prepare(make_sim(), policy, plan)
        deadline = (
            clock() + policy.wall_clock_limit
            if policy.wall_clock_limit is not None
            else None
        )
        try:
            result = _drive(sim, policy, state, clock, deadline, heartbeat)
            return _report(
                result,
                sim,
                attempt,
                state,
                degraded=not result.complete,
                wall=max(0.0, clock() - started),
            )
        except WatchdogTimeout as failure:
            state.failures.append(str(failure))
            if attempt > policy.max_retries:
                if policy.degrade:
                    return _report(
                        sim.partial_result(),
                        sim,
                        attempt,
                        state,
                        degraded=True,
                        wall=max(0.0, clock() - started),
                    )
                raise
            if policy.backoff_base:
                sleep(policy.backoff_base * (2 ** (attempt - 1)))
        except SimulationTruncated as failure:
            # Budget exhaustion is deterministic; retrying cannot help.
            state.failures.append(str(failure))
            if policy.degrade:
                return _report(
                    sim.partial_result(),
                    sim,
                    attempt,
                    state,
                    degraded=True,
                    wall=max(0.0, clock() - started),
                )
            raise


def _prepare(
    sim: GPUSimulator, policy: SupervisionPolicy, plan: FaultPlan | None
) -> GPUSimulator:
    checker = None
    if policy.audit_every:
        checker = InvariantChecker(sim, every=policy.audit_every).attach()
    if plan is not None and len(plan):
        injector = FaultInjector(sim, plan).arm()
        if checker is not None:
            checker.add_holder(injector)
    return sim


def _drive(
    sim: GPUSimulator,
    policy: SupervisionPolicy,
    state: _RunState,
    clock: Callable[[], float],
    deadline: float | None,
    heartbeat: Callable[[GPUSimulator], None] | None = None,
) -> SimulationResult:
    start_events = sim.engine.events_processed
    slices = 0
    while True:
        if deadline is not None and clock() > deadline:
            raise WatchdogTimeout(
                f"attempt exceeded {policy.wall_clock_limit}s wall clock at "
                f"cycle {sim.engine.now} "
                f"({sim.engine.events_processed - start_events} events in)"
            )
        slice_budget = policy.slice_events
        if policy.max_events is not None:
            remaining = policy.max_events - (
                sim.engine.events_processed - start_events
            )
            if remaining <= 0:
                raise SimulationTruncated(
                    f"event budget {policy.max_events} exhausted at cycle "
                    f"{sim.engine.now} with {sim.warps_remaining} warps "
                    f"unfinished"
                )
            slice_budget = min(slice_budget, remaining)
        more = sim.advance(max_events=slice_budget)
        slices += 1
        if heartbeat is not None and slices % policy.heartbeat_every == 0:
            heartbeat(sim)
        if not more:
            # Queue drained naturally; run() validates and builds the
            # final result without processing anything further.
            return sim.run()
        if policy.checkpoint_every and slices % policy.checkpoint_every == 0:
            state.checkpoint = Checkpoint.capture(sim)
            state.checkpoints += 1


def _report(
    result: SimulationResult,
    sim: GPUSimulator,
    attempts: int,
    state: _RunState,
    *,
    degraded: bool,
    wall: float = 0.0,
) -> SupervisedReport:
    counters = sim.stats.counters
    faults = sum(
        value
        for name, value in counters.as_dict().items()
        if name.startswith("chaos.injected.")
    )
    if result.perf is None:
        result.perf = perf_metadata(
            wall_seconds=wall,
            events=sim.engine.events_processed,
            cycles=result.cycles,
        )
    return SupervisedReport(
        result=result,
        attempts=attempts,
        checkpoints=state.checkpoints,
        degraded=degraded,
        failures=tuple(state.failures),
        audits=counters.get("resilience.audits"),
        faults_injected=faults,
        wall_seconds=wall,
    )
