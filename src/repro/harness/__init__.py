"""Experiment harness: runners and per-figure experiment definitions."""

from repro.harness.runner import (
    build_workload,
    default_scale,
    run_matrix,
    run_workload,
    speedups,
)
from repro.harness.supervised import (
    SupervisedReport,
    SupervisionPolicy,
    WatchdogTimeout,
    run_supervised,
)

__all__ = [
    "build_workload",
    "default_scale",
    "run_matrix",
    "run_workload",
    "speedups",
    "SupervisedReport",
    "SupervisionPolicy",
    "WatchdogTimeout",
    "run_supervised",
]
