"""Experiment harness: runners, sweep engine, and figure definitions."""

from repro.harness.pool import (
    SweepPoint,
    dedupe_points,
    default_jobs,
    make_point,
    matrix_points,
    pool_context,
    run_point_supervised,
    run_sweep,
)
from repro.harness.runner import (
    Runner,
    build_workload,
    cache_info,
    clear_cache,
    default_runner,
    default_scale,
    run_workload,
    speedups,
)
from repro.harness.store import ResultStore, default_store_path
from repro.harness.supervised import (
    SupervisedReport,
    SupervisionPolicy,
    AttemptAbandoned,
    WatchdogTimeout,
    run_supervised,
)

__all__ = [
    "Runner",
    "SweepPoint",
    "ResultStore",
    "build_workload",
    "cache_info",
    "clear_cache",
    "default_jobs",
    "default_runner",
    "default_scale",
    "default_store_path",
    "dedupe_points",
    "make_point",
    "matrix_points",
    "pool_context",
    "run_point_supervised",
    "run_sweep",
    "run_workload",
    "speedups",
    "SupervisedReport",
    "SupervisionPolicy",
    "AttemptAbandoned",
    "WatchdogTimeout",
    "run_supervised",
]


def __getattr__(name: str):
    # run_cached / run_matrix finished their deprecation cycle; point
    # stragglers at the Runner replacement instead of a bare
    # AttributeError.
    if name in ("run_cached", "run_matrix"):
        raise ImportError(
            f"repro.harness.{name}() was removed after its deprecation "
            f"cycle; use repro.harness.default_runner().{name}(...) "
            f"(or a Runner instance) instead"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
