"""Experiment harness: runners, sweep engine, and figure definitions."""

from repro.harness.pool import (
    SweepPoint,
    dedupe_points,
    default_jobs,
    make_point,
    matrix_points,
    pool_context,
    run_point_supervised,
    run_sweep,
)
from repro.harness.runner import (
    Runner,
    build_workload,
    cache_info,
    clear_cache,
    default_runner,
    default_scale,
    run_cached,
    run_matrix,
    run_workload,
    speedups,
)
from repro.harness.store import ResultStore, default_store_path
from repro.harness.supervised import (
    SupervisedReport,
    SupervisionPolicy,
    AttemptAbandoned,
    WatchdogTimeout,
    run_supervised,
)

__all__ = [
    "Runner",
    "SweepPoint",
    "ResultStore",
    "build_workload",
    "cache_info",
    "clear_cache",
    "default_jobs",
    "default_runner",
    "default_scale",
    "default_store_path",
    "dedupe_points",
    "make_point",
    "matrix_points",
    "pool_context",
    "run_cached",
    "run_matrix",
    "run_point_supervised",
    "run_sweep",
    "run_workload",
    "speedups",
    "SupervisedReport",
    "SupervisionPolicy",
    "AttemptAbandoned",
    "WatchdogTimeout",
    "run_supervised",
]
