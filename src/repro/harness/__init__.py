"""Experiment harness: runners and per-figure experiment definitions."""

from repro.harness.runner import (
    build_workload,
    default_scale,
    run_matrix,
    run_workload,
    speedups,
)

__all__ = [
    "build_workload",
    "default_scale",
    "run_matrix",
    "run_workload",
    "speedups",
]
