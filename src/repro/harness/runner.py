"""Experiment runner: builds a workload, runs a configuration, sweeps.

The trace for a given benchmark is deterministic in its name, so every
configuration of a sweep replays the identical workload — speedups are
cycles ratios over the same work.

The one front door is :class:`Runner`: it owns the trace scale, the
parallel worker count, the two-tier result cache (an in-memory LRU over
the persistent on-disk :class:`~repro.harness.store.ResultStore`), and
per-run observability.  The last historical module-level helper
(:func:`run_workload`) survives as a deprecation shim delegating to a
process-wide default instance; the ``run_cached`` / ``run_matrix``
shims completed their deprecation cycle and now raise ImportError
naming the :class:`Runner` replacement.

Environment knobs (all read by the default instance):

* ``REPRO_SCALE`` (float, default 1.0) scales trace length globally:
  tests run at tiny scales, benches at 1.0, and patient users can crank
  it up for smoother numbers.
* ``REPRO_JOBS`` (int, default 1) parallelises sweeps across processes.
* ``REPRO_STORE`` (directory) enables the persistent result store, so
  repeated figure/benchmark invocations warm-start from disk.
* ``REPRO_CACHE_ENTRIES`` (int, default 128) bounds the in-memory LRU.
* ``REPRO_TRACE`` (directory) turns on full observability for every
  run, writing one Chrome trace + metrics JSON pair per run into the
  directory (filenames claimed atomically, so parallel workers never
  overwrite each other's traces).
"""

from __future__ import annotations

import json
import os
import time
import warnings
from collections import OrderedDict
from typing import Iterable, Mapping, Sequence

from repro.config import GPUConfig
from repro.gpu.gpu import GPUSimulator, SimulationResult
from repro.harness.pool import (
    SweepPoint,
    default_jobs,
    make_point,
    matrix_points,
    run_sweep,
)
from repro.harness.store import ResultStore, default_store_path
from repro.obs import MetricsRegistry, Observability
from repro.obs.bench import perf_metadata
from repro.workloads.base import TraceWorkload, WorkloadSpec
from repro.workloads.catalog import get_spec

_SCALE_ENV = "REPRO_SCALE"
_TRACE_ENV = "REPRO_TRACE"
_CACHE_ENV = "REPRO_CACHE_ENTRIES"
_DEFAULT_CACHE_ENTRIES = 128


def default_scale() -> float:
    """Trace-length multiplier from the environment (default 1.0)."""
    value = os.environ.get(_SCALE_ENV)
    if value is None:
        return 1.0
    scale = float(value)
    if scale <= 0:
        raise ValueError(f"{_SCALE_ENV} must be positive, got {value!r}")
    return scale


def coerce_config(config: GPUConfig | Mapping) -> GPUConfig:
    """Accept a built config or an inline config dict interchangeably.

    Every Runner entry point funnels through this, so callers holding a
    serialized spec (a sweep file, a service payload) never need to
    deserialize by hand — and the result is fingerprint-identical to
    the equivalent named variant.
    """
    if isinstance(config, GPUConfig):
        return config
    if isinstance(config, Mapping):
        return GPUConfig.from_dict(config)
    raise TypeError(
        f"config must be a GPUConfig or a mapping, got {type(config).__name__}"
    )


def build_workload(
    benchmark: str | WorkloadSpec,
    config: GPUConfig,
    *,
    scale: float | None = None,
    footprint_scale: float = 1.0,
    seed: int | None = None,
) -> TraceWorkload:
    spec = get_spec(benchmark) if isinstance(benchmark, str) else benchmark
    return TraceWorkload(
        spec,
        config,
        scale=scale if scale is not None else default_scale(),
        footprint_scale=footprint_scale,
        seed=seed,
    )


def _env_observability() -> Observability | None:
    """Build a per-run observability bundle when ``REPRO_TRACE`` is set.

    The env value names a directory; each run writes
    ``<abbr>-<n>.trace.json`` / ``<abbr>-<n>.metrics.json`` into it.
    """
    target = os.environ.get(_TRACE_ENV)
    if not target:
        return None
    os.makedirs(target, exist_ok=True)
    return Observability.full()


def _export_env_trace(obs: Observability, benchmark_abbr: str) -> None:
    target = os.environ.get(_TRACE_ENV)
    if not target:
        return
    # Claim the next free slot with O_EXCL atomic creation: a plain
    # exists() probe races under parallel sweep workers (two processes
    # both see "-3 free" and one silently overwrites the other).
    n = 0
    while True:
        stem = os.path.join(target, f"{benchmark_abbr}-{n}")
        try:
            handle = open(stem + ".trace.json", "x", encoding="utf-8")
        except FileExistsError:
            n += 1
            continue
        break
    with handle:
        json.dump(obs.trace.chrome_trace(), handle)
    obs.metrics.write_json(stem + ".metrics.json")


def _cache_capacity() -> int:
    value = os.environ.get(_CACHE_ENV)
    if value is None:
        return _DEFAULT_CACHE_ENTRIES
    capacity = int(value)
    if capacity <= 0:
        raise ValueError(f"{_CACHE_ENV} must be positive, got {value!r}")
    return capacity


class Runner:
    """Facade over simulation execution: scale, caching, parallelism.

    One object owns everything ``run_workload`` / ``run_cached`` /
    ``run_matrix`` used to split between free functions and module
    globals:

    * ``scale`` — default trace scale (None defers to ``REPRO_SCALE``).
    * ``jobs`` — default sweep parallelism (None defers to
      ``REPRO_JOBS``).
    * two-tier result cache — a bounded in-memory LRU in front of the
      persistent :class:`ResultStore` (None defers to ``REPRO_STORE``;
      pass a path or a store to pin one).
    * observability — explicit ``obs=`` per call, else the
      ``REPRO_TRACE`` bundle.

    The memory tier memoises object identity (two equal lookups return
    the *same* ``SimulationResult``); the disk tier persists across
    processes, keyed by the point's full input fingerprint including
    the effective scale and seed.
    """

    def __init__(
        self,
        *,
        scale: float | None = None,
        jobs: int | None = None,
        store: ResultStore | str | os.PathLike | None = None,
        cache_entries: int | None = None,
    ) -> None:
        self.scale = scale
        self._jobs = jobs
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self._store = store
        self._store_pinned = store is not None
        self._store_env_path: str | None = None
        self._cache_entries = cache_entries
        self._cache: OrderedDict[SweepPoint, SimulationResult] = OrderedDict()
        self.metrics = MetricsRegistry()
        self._hits = self.metrics.counter("runner.cache.hits")
        self._misses = self.metrics.counter("runner.cache.misses")
        self._evictions = self.metrics.counter("runner.cache.evictions")
        self._simulations = self.metrics.counter("runner.simulations")

    # ------------------------------------------------------------------
    # Policy resolution
    # ------------------------------------------------------------------
    @property
    def jobs(self) -> int:
        return self._jobs if self._jobs is not None else default_jobs()

    @jobs.setter
    def jobs(self, value: int | None) -> None:
        if value is not None and value < 1:
            raise ValueError(f"jobs must be >= 1, got {value}")
        self._jobs = value

    @property
    def store(self) -> ResultStore | None:
        """The disk tier, tracking ``REPRO_STORE`` unless pinned."""
        if self._store_pinned:
            return self._store
        path = default_store_path()
        if path is None:
            self._store = None
        elif self._store is None or path != self._store_env_path:
            self._store = ResultStore(path)
        self._store_env_path = path
        return self._store

    def _capacity(self) -> int:
        if self._cache_entries is not None:
            return self._cache_entries
        return _cache_capacity()

    def _effective_scale(self, scale: float | None) -> float | None:
        if scale is not None:
            return scale
        return self.scale  # None falls through to default_scale() later

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        config: GPUConfig | Mapping,
        benchmark: str | WorkloadSpec,
        *,
        scale: float | None = None,
        footprint_scale: float = 1.0,
        seed: int | None = None,
        obs: Observability | None = None,
    ) -> SimulationResult:
        """Build the benchmark's trace under ``config`` and simulate it.

        ``config`` may be a built :class:`~repro.config.GPUConfig` or an
        inline config dict.  Always executes (no cache tiers); use
        :meth:`run_cached` or :meth:`sweep` for memoised paths.
        """
        config = coerce_config(config)
        workload = build_workload(
            benchmark,
            config,
            scale=self._effective_scale(scale),
            footprint_scale=footprint_scale,
            seed=seed,
        )
        env_obs = None
        if obs is None:
            env_obs = _env_observability()
            obs = env_obs
        sim = GPUSimulator(config, workload, obs=obs)
        started = time.perf_counter()
        result = sim.run()
        wall = time.perf_counter() - started
        # Host-side throughput rides along (fingerprint-excluded), so
        # the ResultStore accumulates a perf trajectory passively.
        result.perf = perf_metadata(
            wall_seconds=wall,
            events=sim.engine.events_processed,
            cycles=result.cycles,
        )
        if env_obs is not None:
            _export_env_trace(env_obs, workload.spec.abbr)
        return result

    def run_cached(
        self,
        config: GPUConfig | Mapping,
        benchmark: str | WorkloadSpec,
        *,
        scale: float | None = None,
        footprint_scale: float = 1.0,
        seed: int | None = None,
    ) -> SimulationResult:
        """Like :meth:`run`, but served through both cache tiers."""
        point = make_point(
            coerce_config(config),
            benchmark,
            scale=self._effective_scale(scale),
            footprint_scale=footprint_scale,
            seed=seed,
        )
        cached = self._lookup(point)
        if cached is not None:
            return cached
        result = self.run(
            config,
            point.benchmark,
            scale=point.scale,
            footprint_scale=point.footprint_scale,
            seed=point.seed,
        )
        self._publish(point, result)
        return result

    def sweep(
        self,
        points: Sequence[SweepPoint],
        *,
        jobs: int | None = None,
        progress=None,
    ) -> dict[SweepPoint, SimulationResult]:
        """Execute a sweep matrix through the cache tiers.

        Points are deduplicated before dispatch; misses run across
        ``jobs`` worker processes (default: the runner's ``jobs``).
        Results are fingerprint-identical to running every point
        serially, and every fresh simulation is published to both cache
        tiers, so re-running the same sweep is all warm-start.
        """
        return run_sweep(
            points,
            jobs=jobs if jobs is not None else self.jobs,
            lookup=self._lookup,
            publish=self._publish,
            progress=progress,
        )

    def run_matrix(
        self,
        configs: Mapping[str, GPUConfig],
        benchmarks: Iterable[str | WorkloadSpec],
        *,
        scale: float | None = None,
        footprint_scale: float = 1.0,
        jobs: int | None = None,
    ) -> dict[tuple[str, str], SimulationResult]:
        """Every (config, benchmark) pair; keys are (config_label, abbr)."""
        labels = list(configs)
        points = matrix_points(
            configs.values(),
            benchmarks,
            scale=self._effective_scale(scale),
            footprint_scale=footprint_scale,
        )
        by_point = self.sweep(points, jobs=jobs)
        results: dict[tuple[str, str], SimulationResult] = {}
        for index, point in enumerate(points):
            label = labels[index % len(labels)]
            results[(label, point.benchmark)] = by_point[point]
        return results

    def resultset(
        self,
        points: Sequence[SweepPoint],
        *,
        jobs: int | None = None,
        progress=None,
    ):
        """Sweep ``points`` and return the grouped
        :class:`~repro.analysis.ResultSet` — the container the
        experiment-analysis layer and ``repro report`` consume.
        """
        # Local import: keeps the harness importable without the
        # analysis package loaded (and mirrors ResultSet.from_store's
        # layering-safe lazy import in the opposite direction).
        from repro.analysis.resultset import ResultSet

        return ResultSet.from_results(
            self.sweep(points, jobs=jobs, progress=progress),
            source="runner.sweep",
        )

    # ------------------------------------------------------------------
    # Cache tiers
    # ------------------------------------------------------------------
    def _lookup(self, point: SweepPoint) -> SimulationResult | None:
        """Memory first, then the disk store; None on a full miss."""
        cached = self._cache.get(point)
        if cached is not None:
            self._hits.inc()
            self._cache.move_to_end(point)
            return cached
        self._misses.inc()
        store = self.store
        if store is not None:
            result = store.load(point.store_key())
            if result is not None:
                self._insert(point, result)
                return result
        return None

    def _publish(self, point: SweepPoint, result: SimulationResult) -> None:
        """Warm both tiers with a freshly simulated result."""
        self._simulations.inc()
        store = self.store
        if store is not None:
            store.store(point.store_key(), result)
        self._insert(point, result)

    def _insert(self, point: SweepPoint, result: SimulationResult) -> None:
        self._cache[point] = result
        self._cache.move_to_end(point)
        while len(self._cache) > self._capacity():
            self._cache.popitem(last=False)
            self._evictions.inc()

    def cache_info(self) -> dict:
        """Two-tier cache telemetry (memory LRU plus the disk store)."""
        store = self.store
        return {
            "hits": self._hits.value,
            "misses": self._misses.value,
            "evictions": self._evictions.value,
            "entries": len(self._cache),
            "capacity": self._capacity(),
            "simulations": self._simulations.value,
            "store_path": str(store.path) if store is not None else None,
            "disk_hits": store.hits if store is not None else 0,
            "disk_misses": store.misses if store is not None else 0,
            "disk_stores": store.stores if store is not None else 0,
            "disk_evictions": store.evictions if store is not None else 0,
            "disk_quarantined": store.quarantined if store is not None else 0,
            "disk_entries": len(store) if store is not None else 0,
            "disk_bytes": store.size_bytes() if store is not None else 0,
        }

    def clear_cache(self) -> None:
        """Drop every memoised result (counters are left running)."""
        self._cache.clear()


#: The process-wide default instance every module-level shim delegates
#: to; ``python -m repro --jobs N`` adjusts this one.
_DEFAULT_RUNNER: Runner | None = None


def default_runner() -> Runner:
    global _DEFAULT_RUNNER
    if _DEFAULT_RUNNER is None:
        _DEFAULT_RUNNER = Runner()
    return _DEFAULT_RUNNER


#: Backwards-compatible alias: cache telemetry counters now live on the
#: default runner's registry.
cache_metrics = default_runner().metrics


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.harness.runner.{name}() is deprecated; use the Runner "
        f"facade (repro.harness.runner.default_runner()) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_workload(
    config: GPUConfig,
    benchmark: str | WorkloadSpec,
    *,
    scale: float | None = None,
    footprint_scale: float = 1.0,
    seed: int | None = None,
    obs: Observability | None = None,
) -> SimulationResult:
    """Deprecated shim for :meth:`Runner.run` on the default instance."""
    _deprecated("run_workload")
    return default_runner().run(
        config,
        benchmark,
        scale=scale,
        footprint_scale=footprint_scale,
        seed=seed,
        obs=obs,
    )


#: Shims that completed their deprecation cycle -> the Runner method
#: that replaced each.  Importing one now fails loudly with the
#: migration target instead of silently warning.
_RETIRED_SHIMS = {
    "run_cached": "default_runner().run_cached(...) (or Runner.run_cached)",
    "run_matrix": "default_runner().run_matrix(...) (or Runner.run_matrix)",
}


def __getattr__(name: str):
    if name in _RETIRED_SHIMS:
        raise ImportError(
            f"repro.harness.runner.{name}() was removed after its "
            f"deprecation cycle; use {_RETIRED_SHIMS[name]} instead"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def cache_info() -> dict:
    """Two-tier cache telemetry of the default runner."""
    return default_runner().cache_info()


def clear_cache() -> None:
    """Drop the default runner's memoised results."""
    default_runner().clear_cache()


def speedups(
    results: Mapping[tuple[str, str], SimulationResult],
    *,
    baseline_label: str,
) -> dict[tuple[str, str], float]:
    """Per-(label, benchmark) speedup over the baseline configuration."""
    out: dict[tuple[str, str], float] = {}
    for (label, abbr), result in results.items():
        baseline = results[(baseline_label, abbr)]
        out[(label, abbr)] = result.speedup_over(baseline)
    return out
