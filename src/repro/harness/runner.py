"""Experiment runner: builds a workload, runs a configuration, sweeps.

The trace for a given benchmark is deterministic in its name, so every
configuration of a sweep replays the identical workload — speedups are
cycles ratios over the same work.

``REPRO_SCALE`` (float, default 1.0) scales trace length globally:
tests run at tiny scales, benches at 1.0, and patient users can crank
it up for smoother numbers.

``REPRO_TRACE`` (directory path) turns on full observability for every
:func:`run_workload` call, writing one Chrome trace + metrics JSON pair
per run into the directory.  ``REPRO_CACHE_ENTRIES`` (int, default 128)
bounds the :func:`run_cached` memo.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Iterable, Mapping

from repro.config import GPUConfig
from repro.gpu.gpu import GPUSimulator, SimulationResult
from repro.obs import MetricsRegistry, Observability
from repro.workloads.base import TraceWorkload, WorkloadSpec
from repro.workloads.catalog import get_spec

_SCALE_ENV = "REPRO_SCALE"
_TRACE_ENV = "REPRO_TRACE"
_CACHE_ENV = "REPRO_CACHE_ENTRIES"
_DEFAULT_CACHE_ENTRIES = 128


def default_scale() -> float:
    """Trace-length multiplier from the environment (default 1.0)."""
    value = os.environ.get(_SCALE_ENV)
    if value is None:
        return 1.0
    scale = float(value)
    if scale <= 0:
        raise ValueError(f"{_SCALE_ENV} must be positive, got {value!r}")
    return scale


def build_workload(
    benchmark: str | WorkloadSpec,
    config: GPUConfig,
    *,
    scale: float | None = None,
    footprint_scale: float = 1.0,
    seed: int | None = None,
) -> TraceWorkload:
    spec = get_spec(benchmark) if isinstance(benchmark, str) else benchmark
    return TraceWorkload(
        spec,
        config,
        scale=scale if scale is not None else default_scale(),
        footprint_scale=footprint_scale,
        seed=seed,
    )


def _env_observability() -> Observability | None:
    """Build a per-run observability bundle when ``REPRO_TRACE`` is set.

    The env value names a directory; each run writes
    ``<abbr>-<n>.trace.json`` / ``<abbr>-<n>.metrics.json`` into it.
    """
    target = os.environ.get(_TRACE_ENV)
    if not target:
        return None
    os.makedirs(target, exist_ok=True)
    return Observability.full()


def _export_env_trace(obs: Observability, benchmark_abbr: str) -> None:
    target = os.environ.get(_TRACE_ENV)
    if not target:
        return
    n = 0
    while True:
        stem = os.path.join(target, f"{benchmark_abbr}-{n}")
        if not os.path.exists(stem + ".trace.json"):
            break
        n += 1
    obs.trace.write_chrome(stem + ".trace.json")
    obs.metrics.write_json(stem + ".metrics.json")


def run_workload(
    config: GPUConfig,
    benchmark: str | WorkloadSpec,
    *,
    scale: float | None = None,
    footprint_scale: float = 1.0,
    seed: int | None = None,
    obs: Observability | None = None,
) -> SimulationResult:
    """Build the benchmark's trace under ``config`` and simulate it."""
    workload = build_workload(
        benchmark,
        config,
        scale=scale,
        footprint_scale=footprint_scale,
        seed=seed,
    )
    env_obs = None
    if obs is None:
        env_obs = _env_observability()
        obs = env_obs
    result = GPUSimulator(config, workload, obs=obs).run()
    if env_obs is not None:
        _export_env_trace(env_obs, workload.spec.abbr)
    return result


def _cache_capacity() -> int:
    value = os.environ.get(_CACHE_ENV)
    if value is None:
        return _DEFAULT_CACHE_ENTRIES
    capacity = int(value)
    if capacity <= 0:
        raise ValueError(f"{_CACHE_ENV} must be positive, got {value!r}")
    return capacity


#: Memoised results: identical (config, benchmark, scale) runs are
#: deterministic, so figures sharing configurations reuse each other's
#: simulations within one process.  Bounded LRU (``REPRO_CACHE_ENTRIES``)
#: so long sweeps don't pin every SimulationResult in memory.
_CACHE: OrderedDict[tuple, SimulationResult] = OrderedDict()

#: Process-wide cache telemetry, visible via :func:`cache_info`.
cache_metrics = MetricsRegistry()
_cache_hits = cache_metrics.counter("runner.cache.hits")
_cache_misses = cache_metrics.counter("runner.cache.misses")
_cache_evictions = cache_metrics.counter("runner.cache.evictions")


def run_cached(
    config: GPUConfig,
    benchmark: str | WorkloadSpec,
    *,
    scale: float | None = None,
    footprint_scale: float = 1.0,
) -> SimulationResult:
    """Like :func:`run_workload`, but memoised for the process lifetime."""
    spec = get_spec(benchmark) if isinstance(benchmark, str) else benchmark
    effective_scale = scale if scale is not None else default_scale()
    key = (config, spec.abbr, effective_scale, footprint_scale)
    cached = _CACHE.get(key)
    if cached is not None:
        _cache_hits.inc()
        _CACHE.move_to_end(key)
        return cached
    _cache_misses.inc()
    result = run_workload(
        config, spec, scale=effective_scale, footprint_scale=footprint_scale
    )
    _CACHE[key] = result
    while len(_CACHE) > _cache_capacity():
        _CACHE.popitem(last=False)
        _cache_evictions.inc()
    return result


def cache_info() -> dict[str, int]:
    """Memo-cache telemetry: hits, misses, evictions, current size."""
    return {
        "hits": _cache_hits.value,
        "misses": _cache_misses.value,
        "evictions": _cache_evictions.value,
        "entries": len(_CACHE),
        "capacity": _cache_capacity(),
    }


def clear_cache() -> None:
    """Drop every memoised result (counters are left running)."""
    _CACHE.clear()


def run_matrix(
    configs: Mapping[str, GPUConfig],
    benchmarks: Iterable[str | WorkloadSpec],
    *,
    scale: float | None = None,
    footprint_scale: float = 1.0,
) -> dict[tuple[str, str], SimulationResult]:
    """Run every (config, benchmark) pair; keys are (config_label, abbr)."""
    results: dict[tuple[str, str], SimulationResult] = {}
    for benchmark in benchmarks:
        spec = get_spec(benchmark) if isinstance(benchmark, str) else benchmark
        for label, config in configs.items():
            results[(label, spec.abbr)] = run_workload(
                config,
                spec,
                scale=scale,
                footprint_scale=footprint_scale,
            )
    return results


def speedups(
    results: Mapping[tuple[str, str], SimulationResult],
    *,
    baseline_label: str,
) -> dict[tuple[str, str], float]:
    """Per-(label, benchmark) speedup over the baseline configuration."""
    out: dict[tuple[str, str], float] = {}
    for (label, abbr), result in results.items():
        baseline = results[(baseline_label, abbr)]
        out[(label, abbr)] = result.speedup_over(baseline)
    return out
