"""Experiment runner: builds a workload, runs a configuration, sweeps.

The trace for a given benchmark is deterministic in its name, so every
configuration of a sweep replays the identical workload — speedups are
cycles ratios over the same work.

``REPRO_SCALE`` (float, default 1.0) scales trace length globally:
tests run at tiny scales, benches at 1.0, and patient users can crank
it up for smoother numbers.
"""

from __future__ import annotations

import os
from typing import Iterable, Mapping

from repro.config import GPUConfig
from repro.gpu.gpu import GPUSimulator, SimulationResult
from repro.workloads.base import TraceWorkload, WorkloadSpec
from repro.workloads.catalog import get_spec

_SCALE_ENV = "REPRO_SCALE"


def default_scale() -> float:
    """Trace-length multiplier from the environment (default 1.0)."""
    value = os.environ.get(_SCALE_ENV)
    if value is None:
        return 1.0
    scale = float(value)
    if scale <= 0:
        raise ValueError(f"{_SCALE_ENV} must be positive, got {value!r}")
    return scale


def build_workload(
    benchmark: str | WorkloadSpec,
    config: GPUConfig,
    *,
    scale: float | None = None,
    footprint_scale: float = 1.0,
    seed: int | None = None,
) -> TraceWorkload:
    spec = get_spec(benchmark) if isinstance(benchmark, str) else benchmark
    return TraceWorkload(
        spec,
        config,
        scale=scale if scale is not None else default_scale(),
        footprint_scale=footprint_scale,
        seed=seed,
    )


def run_workload(
    config: GPUConfig,
    benchmark: str | WorkloadSpec,
    *,
    scale: float | None = None,
    footprint_scale: float = 1.0,
    seed: int | None = None,
) -> SimulationResult:
    """Build the benchmark's trace under ``config`` and simulate it."""
    workload = build_workload(
        benchmark,
        config,
        scale=scale,
        footprint_scale=footprint_scale,
        seed=seed,
    )
    return GPUSimulator(config, workload).run()


#: Memoised results: identical (config, benchmark, scale) runs are
#: deterministic, so figures sharing configurations reuse each other's
#: simulations within one process.
_CACHE: dict[tuple, SimulationResult] = {}


def run_cached(
    config: GPUConfig,
    benchmark: str | WorkloadSpec,
    *,
    scale: float | None = None,
    footprint_scale: float = 1.0,
) -> SimulationResult:
    """Like :func:`run_workload`, but memoised for the process lifetime."""
    spec = get_spec(benchmark) if isinstance(benchmark, str) else benchmark
    effective_scale = scale if scale is not None else default_scale()
    key = (config, spec.abbr, effective_scale, footprint_scale)
    if key not in _CACHE:
        _CACHE[key] = run_workload(
            config, spec, scale=effective_scale, footprint_scale=footprint_scale
        )
    return _CACHE[key]


def clear_cache() -> None:
    _CACHE.clear()


def run_matrix(
    configs: Mapping[str, GPUConfig],
    benchmarks: Iterable[str | WorkloadSpec],
    *,
    scale: float | None = None,
    footprint_scale: float = 1.0,
) -> dict[tuple[str, str], SimulationResult]:
    """Run every (config, benchmark) pair; keys are (config_label, abbr)."""
    results: dict[tuple[str, str], SimulationResult] = {}
    for benchmark in benchmarks:
        spec = get_spec(benchmark) if isinstance(benchmark, str) else benchmark
        for label, config in configs.items():
            results[(label, spec.abbr)] = run_workload(
                config,
                spec,
                scale=scale,
                footprint_scale=footprint_scale,
            )
    return results


def speedups(
    results: Mapping[tuple[str, str], SimulationResult],
    *,
    baseline_label: str,
) -> dict[tuple[str, str], float]:
    """Per-(label, benchmark) speedup over the baseline configuration."""
    out: dict[tuple[str, str], float] = {}
    for (label, abbr), result in results.items():
        baseline = results[(baseline_label, abbr)]
        out[(label, abbr)] = result.speedup_over(baseline)
    return out
