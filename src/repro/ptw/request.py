"""Page-walk request: the unit of work flowing from the L2 TLB to walkers."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WalkRequest:
    """One outstanding page table walk.

    Created by the L2 TLB controller on a tracked miss, after the Page
    Walk Cache probe decided the starting level (the Request Distributor
    "consults the PWC before dispatching page walk requests").
    """

    vpn: int
    #: Cycle the L2 TLB miss was ready to be walked (end of L2 lookup).
    enqueue_time: int
    #: Level of the first page table node to read (root if PWC missed).
    start_level: int
    #: Physical base address of that node.
    node_base: int
    #: SM whose L1 TLB miss triggered the walk (the first requester).
    #: Warp-aware PWB scheduling (ref [85]) batches on this.
    requester_sm: int = -1
    #: VPNs coalesced onto this walk by NHA (excluding ``vpn`` itself).
    merged_vpns: list[int] = field(default_factory=list)
    #: Latency components filled in as the walk progresses.
    queueing: int = 0
    access: int = 0
    communication: int = 0
    execution: int = 0
    #: True when the walk hit an invalid PTE (page fault).
    faulted: bool = False
    fault_level: int = 0
    #: Async-span id following this walk through the trace (0 = untraced).
    trace_id: int = 0

    @property
    def total_latency(self) -> int:
        return self.queueing + self.access + self.communication + self.execution

    def all_vpns(self) -> list[int]:
        return [self.vpn, *self.merged_vpns]
