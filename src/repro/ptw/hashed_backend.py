"""FS-HPT traversal strategy (ref [32]).

FS-HPT keeps the hardware walker pool but replaces the radix pointer
chase with hashed page-table probes: usually a single memory access,
plus one per linear-probe collision.  Plugged into
:class:`~repro.ptw.subsystem.HardwareWalkBackend` as its ``traversal``
— the PWB, ports and walker-count limits are unchanged, which is
exactly why FS-HPT still suffers PTW contention in the paper.
"""

from __future__ import annotations

from typing import Callable

from repro.pagetable.hashed import HashedPageTable
from repro.ptw.walker import PteMemoryPort, WalkOutcome


def make_hashed_traversal(
    hashed_table: HashedPageTable, pte_port: PteMemoryPort
) -> Callable[[int, int, int], WalkOutcome]:
    """Build a traversal callable for a hashed page table."""

    def traverse(vpn: int, _start_level: int, begin: int) -> WalkOutcome:
        pfn, probe_addresses = hashed_table.probe(vpn)
        t = begin
        leaf_address = None
        for address in probe_addresses:
            t = pte_port.read(address, t)
            leaf_address = address
        return WalkOutcome(
            pfn=pfn,
            finish_time=t,
            access_cycles=t - begin,
            levels_accessed=len(probe_addresses),
            faulted=pfn is None,
            fault_level=1 if pfn is None else 0,
            leaf_pte_address=leaf_address,
        )

    return traverse
