"""Hardware page-walk subsystem: PWB, walker pool, ports, NHA coalescing.

The baseline GPU resolves L2 TLB misses here: requests buffer in the
Page Walk Buffer until one of the ``num_walkers`` hardware walkers is
free, then traverse the radix table through the memory system.  The
time a request spends buffered is the *queueing delay* the whole paper
revolves around; it is recorded separately from traversal time.

Optionally models:

* **PWB ports** — how many walks can be dequeued per cycle (Figure 15's
  area/performance trade-off sweep).
* **NHA coalescing** (ref [86]) — pending walks whose final-level PTEs
  fall in the same cache sector merge into a single traversal.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.arch.registry import PWB_POLICIES
from repro.config import PTWConfig
from repro.pagetable.radix import RadixPageTable
from repro.ptw.request import WalkRequest
from repro.ptw.walker import PteMemoryPort, WalkOutcome, execute_walk
from repro.sim.engine import Engine, batch_dispatch
from repro.sim.stats import StatsRegistry
from repro.tlb.pwc import PageWalkCache

#: PTEs covered by one coalescing unit (32B sector / 8B PTE).
NHA_SPAN_PTES = 4

CompletionCallback = Callable[[WalkRequest, WalkOutcome], None]


class PwbPolicy:
    """PWB dequeue order: which queued walk a freed walker picks up.

    Resolved by name through :data:`repro.arch.registry.PWB_POLICIES`.
    ``dequeue`` receives the backend and must remove and return one
    request from ``backend._queue`` (guaranteed non-empty).
    """

    name = "?"

    def dequeue(self, backend: "HardwareWalkBackend") -> WalkRequest:
        raise NotImplementedError


class FcfsPwbPolicy(PwbPolicy):
    """Drain the PWB strictly in arrival order (the default)."""

    name = "fcfs"

    def dequeue(self, backend: "HardwareWalkBackend") -> WalkRequest:
        return backend._queue.popleft()


class SmBatchPwbPolicy(PwbPolicy):
    """Warp-aware page-walk scheduling (ref [85]).

    Prefers a walk from the same SM as the one just finished, shrinking
    the gap between the first and last completed walks of one warp
    instruction.
    """

    name = "sm_batch"

    def dequeue(self, backend: "HardwareWalkBackend") -> WalkRequest:
        queue = backend._queue
        if backend._last_sm >= 0:
            # Bounded scan keeps the CAM-match cost plausible.
            limit = min(len(queue), backend.config.pwb_entries)
            for index in range(limit):
                if queue[index].requester_sm == backend._last_sm:
                    request = queue[index]
                    del queue[index]
                    backend.stats.counters.add("ptw.sm_batched")
                    return request
        return queue.popleft()


class HardwareWalkBackend:
    """Fixed pool of hardware page table walkers fed by a PWB."""

    def __init__(
        self,
        engine: Engine,
        config: PTWConfig,
        page_table: RadixPageTable,
        pte_port: PteMemoryPort,
        pwc: PageWalkCache | None,
        stats: StatsRegistry,
        traversal: Callable[[int, int, int], WalkOutcome] | None = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.page_table = page_table
        self.pte_port = pte_port
        self.pwc = pwc
        self.stats = stats
        self._trace = stats.obs.trace
        self._traverse = traversal or self._radix_traverse
        self.on_complete: CompletionCallback | None = None
        self._queue: deque[WalkRequest] = deque()
        self._free_walkers = config.num_walkers
        #: Requests currently executing on a walker, in start order.
        #: Kept for conservation audits: every tracked L2 miss must be
        #: attributable to a live walk somewhere in the machine.
        self._busy: list[WalkRequest] = []
        #: Walkers administratively removed from the pool (fault
        #: injection models transient walker stalls this way).
        self._stalled = 0
        # PWB ports bound how many walks can be dequeued per cycle.
        self._port_cycle = 0
        self._port_used = 0
        self._last_sm = -1
        self._nha_pending: dict[int, WalkRequest] = {}
        self._pwb_policy = PWB_POLICIES.create(config.pwb_policy)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    @property
    def has_free_walker(self) -> bool:
        return self._free_walkers > 0

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def busy_walkers(self) -> int:
        return len(self._busy)

    @property
    def stalled_walkers(self) -> int:
        return self._stalled

    @property
    def in_flight(self) -> int:
        """Requests the backend currently owns (queued + executing)."""
        return len(self._queue) + len(self._busy)

    def live_requests(self) -> list[WalkRequest]:
        """Every request the backend owns right now (audit support)."""
        return [*self._queue, *self._busy]

    def stall_walkers(self, count: int) -> int:
        """Administratively remove up to ``count`` walkers from the pool.

        Busy walkers finish their current walk but do not pick up new
        work until :meth:`resume_walkers`.  Returns how many were
        actually stalled (never more than the pool size).
        """
        count = max(0, min(count, self.config.num_walkers - self._stalled))
        self._stalled += count
        self._free_walkers -= count
        return count

    def resume_walkers(self, count: int) -> None:
        """Return stalled walkers to service and drain the PWB backlog."""
        count = max(0, min(count, self._stalled))
        self._stalled -= count
        self._free_walkers += count
        while self._queue and self._free_walkers > 0:
            self._start(self._dequeue())

    def utilisation(self) -> float:
        """Instantaneous fraction of walkers busy (a sampler gauge)."""
        if self.config.num_walkers == 0:
            return 0.0
        return self.busy_walkers / self.config.num_walkers

    def register_metrics(self, metrics) -> None:
        """Expose PWB and walker-pool state as sampled gauges."""
        metrics.register_gauge("ptw.queue_depth", lambda: len(self._queue))
        metrics.register_gauge("ptw.busy_walkers", lambda: self.busy_walkers)
        metrics.register_gauge("ptw.utilisation", self.utilisation)

    def submit(self, request: WalkRequest) -> None:
        """Accept a walk request (enqueue time already stamped)."""
        self.stats.counters.add("ptw.submitted")
        if self.config.nha_coalescing and self._try_nha_merge(request):
            return
        if self._free_walkers > 0:
            self._start(request)
            return
        if len(self._queue) >= self.config.pwb_entries:
            # The PWB proper is full; requests overflow into MSHR-held
            # backpressure.  The wait is still queueing delay either way.
            self.stats.counters.add("ptw.pwb_overflow")
            if self._trace.enabled:
                self._trace.instant(
                    "pwb", "pwb.overflow", self.engine.now, vpn=request.vpn
                )
        self._queue.append(request)
        if self._trace.enabled:
            self._trace.counter(
                "pwb", "pwb.depth", self.engine.now, depth=len(self._queue)
            )
        if self.config.nha_coalescing:
            self._nha_pending.setdefault(self._nha_key(request.vpn), request)

    def _nha_key(self, vpn: int) -> int:
        return vpn // NHA_SPAN_PTES

    def _try_nha_merge(self, request: WalkRequest) -> bool:
        """Merge onto a *queued* walk whose leaf PTE shares the sector."""
        host = self._nha_pending.get(self._nha_key(request.vpn))
        if host is None or host.vpn == request.vpn:
            return False
        if len(host.merged_vpns) + 1 >= NHA_SPAN_PTES:
            return False
        host.merged_vpns.append(request.vpn)
        self.stats.counters.add("ptw.nha_merged")
        if self._trace.enabled:
            self._trace.instant(
                "pwb",
                "pwb.nha_merge",
                self.engine.now,
                vpn=request.vpn,
                host_vpn=host.vpn,
            )
        return True

    # ------------------------------------------------------------------
    # Walker pool
    # ------------------------------------------------------------------
    def _acquire_port(self, when: int) -> int:
        """Dequeuing a walk occupies one PWB port for a cycle.

        At most ``pwb_ports`` walks may start per cycle; extra starts
        slip to following cycles.  Grant times are monotone because the
        walker pool starts walks in arrival order.
        """
        if when > self._port_cycle:
            self._port_cycle = when
            self._port_used = 0
        if self._port_used < self.config.pwb_ports:
            self._port_used += 1
            return self._port_cycle
        self._port_cycle += 1
        self._port_used = 1
        return self._port_cycle

    def _start(self, request: WalkRequest) -> None:
        self._free_walkers -= 1
        self._busy.append(request)
        if self.config.nha_coalescing:
            self._nha_pending.pop(self._nha_key(request.vpn), None)
        begin = self._acquire_port(max(self.engine.now, request.enqueue_time))
        request.queueing = begin - request.enqueue_time
        outcome = self._traverse(request.vpn, request.start_level, begin)
        request.access = outcome.finish_time - begin
        request.faulted = outcome.faulted
        request.fault_level = outcome.fault_level
        self.stats.counters.add("ptw.walks")
        self.stats.histogram("ptw.levels").record(outcome.levels_accessed)
        if self._trace.enabled:
            self._trace.instant(
                "pwb",
                "ptw.walk_start",
                begin,
                id=request.trace_id,
                vpn=request.vpn,
                queued=request.queueing,
                levels=outcome.levels_accessed,
            )
        self.engine.schedule_at(outcome.finish_time, self._finish, request, outcome)

    def _radix_traverse(self, vpn: int, start_level: int, begin: int) -> WalkOutcome:
        return execute_walk(
            self.page_table, self.pte_port, self.pwc, vpn, start_level, begin
        )

    def _dequeue(self) -> WalkRequest:
        """Pick the next queued walk according to the PWB policy."""
        return self._pwb_policy.dequeue(self)

    @batch_dispatch("_finish_batch")
    def _finish(self, request: WalkRequest, outcome: WalkOutcome) -> None:
        self._free_walkers += 1
        self._busy.remove(request)
        self._last_sm = request.requester_sm
        if self.on_complete is None:
            raise RuntimeError("HardwareWalkBackend.on_complete not wired")
        self.on_complete(request, outcome)
        while self._queue and self._free_walkers > 0:
            self._start(self._dequeue())

    def _finish_batch(self, batch: list[tuple[WalkRequest, WalkOutcome]]) -> None:
        """Batch form of :meth:`_finish` for same-cycle completions.

        Must stay exactly equivalent to calling :meth:`_finish` once per
        ``(request, outcome)`` pair in order; the only change is hoisting
        loop-invariant lookups out of the per-event body.
        """
        busy = self._busy
        queue = self._queue
        for request, outcome in batch:
            self._free_walkers += 1
            busy.remove(request)
            self._last_sm = request.requester_sm
            on_complete = self.on_complete
            if on_complete is None:
                raise RuntimeError("HardwareWalkBackend.on_complete not wired")
            on_complete(request, outcome)
            while queue and self._free_walkers > 0:
                self._start(self._dequeue())
