"""The page-table traversal itself, shared by hardware and software walkers.

A walk is a dependent chain of PTE reads — one per remaining radix level
— each priced by the memory system (L2 data cache, then DRAM), unless a
fixed per-level latency override is active (Figure 23's sensitivity
knob).  Intermediate node pointers are pushed into the Page Walk Cache
as they are discovered, which is what lets subsequent walks start below
the root.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pagetable.radix import RadixPageTable
from repro.tlb.pwc import PageWalkCache


@dataclass(frozen=True)
class WalkOutcome:
    """Result of traversing the radix table for one VPN."""

    pfn: int | None
    finish_time: int
    #: Cycles spent on PTE memory accesses (the paper's "page table
    #: access latency" component).
    access_cycles: int
    levels_accessed: int
    faulted: bool
    fault_level: int
    #: Physical address of the final-level PTE (None if the walk
    #: faulted above the leaf).  NHA coalescing keys on this.
    leaf_pte_address: int | None


class PteMemoryPort:
    """Where walkers read PTEs from: L2 cache/DRAM or a fixed latency."""

    def __init__(self, memory, fixed_level_latency: int | None = None) -> None:
        self._memory = memory
        self._fixed = fixed_level_latency

    def read(self, address: int, now: int) -> int:
        """Issue one PTE read at ``now``; returns its completion cycle."""
        if self._fixed is not None:
            return now + self._fixed
        return self._memory.pte_access(address, now)


def execute_walk(
    page_table: RadixPageTable,
    pte_port: PteMemoryPort,
    pwc: PageWalkCache | None,
    vpn: int,
    start_level: int,
    start_time: int,
) -> WalkOutcome:
    """Traverse the page table for ``vpn`` starting at ``start_level``.

    Timestamp-style execution: each level's read begins when the previous
    one finished (the radix walk is a pointer chase and cannot be
    pipelined within one request).
    """
    steps = page_table.walk_path(vpn, start_level)
    t = start_time
    access_cycles = 0
    leaf_pte_address: int | None = None
    for step in steps:
        completion = pte_port.read(step.pte_address, t)
        access_cycles += completion - t
        t = completion
        if step.is_leaf:
            leaf_pte_address = step.pte_address
        if not step.valid:
            return WalkOutcome(
                pfn=None,
                finish_time=t,
                access_cycles=access_cycles,
                levels_accessed=len(steps),
                faulted=True,
                fault_level=step.level,
                leaf_pte_address=leaf_pte_address,
            )
        if not step.is_leaf and pwc is not None:
            # FPWC: cache the freshly discovered next-level node pointer.
            pwc.fill(vpn, step.level - 1, step.value)
    final = steps[-1]
    return WalkOutcome(
        pfn=final.value,
        finish_time=t,
        access_cycles=access_cycles,
        levels_accessed=len(steps),
        faulted=False,
        fault_level=0,
        leaf_pte_address=leaf_pte_address,
    )
