"""Hardware page-walk subsystem: PWB, walkers, NHA coalescing."""

from repro.ptw.request import WalkRequest
from repro.ptw.subsystem import NHA_SPAN_PTES, HardwareWalkBackend
from repro.ptw.walker import PteMemoryPort, WalkOutcome, execute_walk

__all__ = [
    "WalkRequest",
    "NHA_SPAN_PTES",
    "HardwareWalkBackend",
    "PteMemoryPort",
    "WalkOutcome",
    "execute_walk",
]
