"""Design-space exploration over the pluggable machine (``repro explore``).

The package that finally *searches* the configuration space PR 5 made
serializable: :mod:`~repro.explore.space` declares a
:class:`SearchSpace` over ``GPUConfig`` knobs, :mod:`~repro.explore.search`
drives it with successive halving (cheap truncated/reduced-scale rungs
first, full fidelity only for finalists) on top of the harness sweep
engine, and :mod:`~repro.explore.pareto` extracts the Pareto front of
performance against the :mod:`repro.analysis.area` cost model.

Everything is deterministic by construction: enumeration order is the
lexicographic cross product, sampling is ``stable_seed``-seeded, rung
ledgers are computed from the simulation results themselves (never from
wall clocks), and the emitted artifact is byte-identical for a fixed
seed at any ``--jobs N`` — including after a mid-search kill + resume.
"""

from repro.explore.pareto import (
    ParetoPoint,
    config_relative_area,
    knee_point,
    pareto_front,
)
from repro.explore.render import explore_html, explore_markdown
from repro.explore.search import (
    ARTIFACT_VERSION,
    DEFAULT_RUNGS,
    ExploreError,
    ExploreOptions,
    Rung,
    artifact_json,
    parse_rungs,
    run_explore,
    select_survivors,
)
from repro.explore.space import (
    Candidate,
    CategoricalDim,
    IntRangeDim,
    Pow2Dim,
    SearchSpace,
    apply_assignment,
    dimension_from_dict,
    load_space,
    seeded_sample,
)

__all__ = [
    # space
    "Candidate",
    "CategoricalDim",
    "IntRangeDim",
    "Pow2Dim",
    "SearchSpace",
    "apply_assignment",
    "dimension_from_dict",
    "load_space",
    "seeded_sample",
    # search
    "ARTIFACT_VERSION",
    "DEFAULT_RUNGS",
    "ExploreError",
    "ExploreOptions",
    "Rung",
    "artifact_json",
    "parse_rungs",
    "run_explore",
    "select_survivors",
    # render
    "explore_html",
    "explore_markdown",
    # pareto
    "ParetoPoint",
    "config_relative_area",
    "knee_point",
    "pareto_front",
]
