"""Human-readable reports over an explore artifact.

Takes the versioned JSON artifact :func:`repro.explore.search.run_explore`
returns and renders the story a reader actually wants: what space was
searched, how the halving ladder narrowed it, what the Pareto front
looks like, and how much simulation the search saved over an exhaustive
grid.  Tables come from :mod:`repro.analysis.render` so explore reports
match the ``repro report`` house style.
"""

from __future__ import annotations

from repro.analysis.render import html_table, markdown_table

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1a1a2e; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #cbd5e1; padding: 0.35rem 0.7rem;
         text-align: right; }
th:first-child, td:first-child { text-align: left; }
thead th { background: #f1f5f9; }
em.note { color: #555; }
""".strip()


def _fmt(value: float | None, digits: int = 4) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.{digits}g}"


def _intro_lines(artifact: dict) -> list[str]:
    space = artifact["space"]
    options = artifact["options"]
    dims = ", ".join(dim["path"] for dim in space["dimensions"])
    searched = len(artifact["candidates"])
    base = (
        f"base `{space['base']}`"
        if isinstance(space["base"], str)
        else "inline base config"
    )
    lines = [
        f"Search space: {searched} candidate(s) over {dims} ({base}), "
        f"metric `{options['metric']}` on "
        f"{', '.join(options['benchmarks'])} at scale "
        f"{_fmt(options['scale'])}, "
        f"{len(options['seeds'])} seed replicate(s)."
    ]
    if artifact["skipped"]:
        lines.append(
            f"{len(artifact['skipped'])} combination(s) skipped as invalid "
            "cross-field configs."
        )
    return lines


def _rung_rows(artifact: dict) -> tuple[list[str], list[list[str]]]:
    headers = [
        "rung",
        "scale",
        "max_events",
        "candidates",
        "runs",
        "simulated cycles",
        "survivors",
    ]
    rows = []
    for entry in artifact["rungs"]:
        rows.append(
            [
                str(entry["rung"] + 1),
                _fmt(entry["scale"]),
                "-" if entry["max_events"] is None else str(entry["max_events"]),
                str(entry["candidates"]),
                str(entry["runs"]),
                str(entry["simulated_cycles"]),
                str(len(entry["survivors"])),
            ]
        )
    return headers, rows


def _front_rows(artifact: dict) -> tuple[list[str], list[list[str]]]:
    knee = artifact.get("knee") or {}
    knee_id = knee.get("candidate")
    headers = ["candidate", "assignment", "performance", "relative area", ""]
    rows = []
    for point in artifact["pareto_front"]:
        assignment = ", ".join(
            f"{path}={value}" for path, value in sorted(point["assignment"].items())
        )
        rows.append(
            [
                point["candidate"],
                assignment or "(base)",
                _fmt(point["performance"], 6),
                _fmt(point["cost"], 4),
                "knee" if point["candidate"] == knee_id else "",
            ]
        )
    return headers, rows


def _budget_line(artifact: dict) -> str:
    budget = artifact["budget"]
    return (
        f"Simulated {budget['spent_cycles']} cycles total vs an estimated "
        f"{_fmt(budget['exhaustive_estimate_cycles'], 6)} for an exhaustive "
        f"full-fidelity grid — {budget['savings_fraction']:.0%} saved."
    )


def explore_markdown(artifact: dict) -> str:
    """The full explore report as GitHub-flavoured markdown."""
    lines: list[str] = ["# Design-space exploration", ""]
    lines.extend(_intro_lines(artifact))
    lines.append("")
    lines.append("## Halving ledger")
    lines.append("")
    lines.append(markdown_table(*_rung_rows(artifact)))
    lines.append("")
    lines.append("## Pareto front (performance vs relative area)")
    lines.append("")
    lines.append(markdown_table(*_front_rows(artifact)))
    lines.append("")
    lines.append(_budget_line(artifact))
    lines.append("")
    return "\n".join(lines)


def explore_html(artifact: dict) -> str:
    """Same report as a self-contained HTML page."""
    intro = "".join(f"<p>{line}</p>\n" for line in _intro_lines(artifact))
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        "<title>Design-space exploration</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        "<h1>Design-space exploration</h1>",
        intro,
        "<h2>Halving ledger</h2>",
        html_table(*_rung_rows(artifact)),
        "<h2>Pareto front (performance vs relative area)</h2>",
        html_table(*_front_rows(artifact)),
        f"<p><em class='note'>{_budget_line(artifact)}</em></p>",
        "</body></html>",
    ]
    return "\n".join(parts) + "\n"
