"""Successive-halving (ASHA-style) search over a :class:`SearchSpace`.

The driver climbs a ladder of *rungs* of escalating fidelity.  Early
rungs run every surviving candidate cheaply — at a reduced trace scale
and, optionally, under a truncated event budget (the supervised
runner's :class:`~repro.gpu.gpu.SimulationTruncated` degrade path, so a
partial result still carries everything it measured).  Each rung ranks
candidates by the geomean over benchmarks of their median-over-seeds
metric and promotes the top ``keep`` fraction, plus any near-tie that
:func:`repro.analysis.stat_tests.relative_verdict` refuses to call a
regression against the cutoff.  Only the finalists reach the full-
fidelity last rung, whose scores feed the Pareto front.

Reproducibility invariants (the acceptance bar of this subsystem):

* **Any ``--jobs N`` is byte-identical.**  Candidate order, rung
  ledgers, and scores are computed from the deterministic simulation
  results in first-seen point order; nothing reads a wall clock.
* **Kill + resume is bit-identical.**  After every rung the driver
  atomically persists a state file (ledger + survivors, fingerprinted
  against the space and options).  A restart replays completed rungs
  from state, re-enters the interrupted rung, and — because every run
  is deduped through the :class:`~repro.harness.store.ResultStore` —
  re-executes only what never finished.  Truncated-rung results are
  stored under a key augmented with ``max_events``, so a partial-
  fidelity entry can never be mistaken for a full-fidelity one.
"""

from __future__ import annotations

import functools
import hashlib
import json
import math
import os
import statistics
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.analysis.report import geomean
from repro.analysis.resultset import METRICS
from repro.analysis.stat_tests import relative_verdict
from repro.explore.pareto import (
    ParetoPoint,
    config_relative_area,
    knee_point,
    pareto_front,
)
from repro.explore.space import Candidate, SearchSpace, seeded_sample
from repro.harness.pool import SweepPoint, run_sweep
from repro.harness.runner import Runner, default_runner, default_scale

#: Version stamped into the explore artifact and the state file.
ARTIFACT_VERSION = 1
STATE_VERSION = 1

#: Narration callback: one human-readable progress line.
LogFn = Callable[[str], None]


class ExploreError(ValueError):
    """A printable configuration/usage error of the explore driver."""


# ----------------------------------------------------------------------
# Rungs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Rung:
    """One fidelity level of the ladder."""

    #: Fraction of the target trace scale simulated at this rung.
    scale: float
    #: Fraction of candidates promoted out (the final rung ignores it).
    keep: float = 0.5
    #: Per-run event budget; exceeding it degrades to a partial result.
    max_events: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ExploreError(f"rung scale must be in (0, 1], got {self.scale}")
        if not 0.0 < self.keep <= 1.0:
            raise ExploreError(f"rung keep must be in (0, 1], got {self.keep}")
        if self.max_events is not None and self.max_events < 1:
            raise ExploreError(f"rung max_events must be >= 1, got {self.max_events}")

    def to_dict(self) -> dict:
        return {"scale": self.scale, "keep": self.keep, "max_events": self.max_events}


#: The stock ladder: quarter-scale triage, half-scale refinement, full
#: fidelity for the survivors.
DEFAULT_RUNGS: tuple[Rung, ...] = (
    Rung(scale=0.25, keep=0.34),
    Rung(scale=0.5, keep=0.5),
    Rung(scale=1.0),
)


def parse_rungs(text: str) -> tuple[Rung, ...]:
    """Parse ``"scale[:keep[:max_events]],..."`` (e.g. ``0.25:0.34,1``)."""
    rungs: list[Rung] = []
    for token in (t.strip() for t in text.split(",") if t.strip()):
        fields = token.split(":")
        if len(fields) > 3:
            raise ExploreError(
                f"rung {token!r} has too many fields; expected "
                "scale[:keep[:max_events]]"
            )
        try:
            scale = float(fields[0])
            keep = float(fields[1]) if len(fields) > 1 and fields[1] else 1.0
            max_events = int(fields[2]) if len(fields) > 2 and fields[2] else None
        except ValueError as failure:
            raise ExploreError(f"bad rung {token!r}: {failure}") from None
        rungs.append(Rung(scale=scale, keep=keep, max_events=max_events))
    if not rungs:
        raise ExploreError("at least one rung is required")
    return tuple(rungs)


def _validate_rungs(rungs: Sequence[Rung]) -> tuple[Rung, ...]:
    rungs = tuple(rungs)
    if not rungs:
        raise ExploreError("at least one rung is required")
    final = rungs[-1]
    if final.scale != 1.0 or final.max_events is not None:
        raise ExploreError(
            "the final rung must be full fidelity (scale 1.0, no event "
            "budget) — its scores feed the Pareto front"
        )
    return rungs


# ----------------------------------------------------------------------
# Options
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExploreOptions:
    """Everything that shapes a search (and fingerprints its state)."""

    benchmarks: tuple[str, ...] = ("dc",)
    #: Workload seed replicates per (candidate, benchmark).
    seeds: tuple = (None,)
    #: Full-fidelity trace scale; None defers to ``REPRO_SCALE``.
    scale: float | None = None
    rungs: tuple[Rung, ...] = DEFAULT_RUNGS
    #: Search only a seeded subset of this many candidates (None = all).
    sample: int | None = None
    #: Seed for the subset sampler (and nothing else — the simulation
    #: itself is deterministic in the workload seeds).
    search_seed: int = 0
    #: Near-tie promotion tolerance fed to ``relative_verdict``.
    tolerance: float = 0.0
    #: Ranking metric; must be simulation-derived (not host-perf) so
    #: the artifact stays byte-reproducible.
    metric: str = "cycles"

    def __post_init__(self) -> None:
        object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(self, "rungs", _validate_rungs(self.rungs))
        if not self.benchmarks:
            raise ExploreError("at least one benchmark is required")
        if not self.seeds:
            raise ExploreError("at least one seed replicate is required")
        if self.sample is not None and self.sample < 1:
            raise ExploreError(f"sample must be >= 1, got {self.sample}")
        if self.tolerance < 0:
            raise ExploreError(f"tolerance must be >= 0, got {self.tolerance}")
        if self.metric not in METRICS:
            known = ", ".join(sorted(METRICS))
            raise ExploreError(
                f"unknown metric {self.metric!r}; known metrics: {known}"
            )
        if self.metric in ("wall_seconds", "events_per_sec"):
            raise ExploreError(
                f"metric {self.metric!r} is host-perf metadata; ranking on "
                "it would make the artifact non-reproducible"
            )

    def effective_scale(self) -> float:
        return self.scale if self.scale is not None else default_scale()

    def to_dict(self) -> dict:
        return {
            "benchmarks": list(self.benchmarks),
            "seeds": list(self.seeds),
            "scale": self.effective_scale(),
            "rungs": [rung.to_dict() for rung in self.rungs],
            "sample": self.sample,
            "search_seed": self.search_seed,
            "tolerance": self.tolerance,
            "metric": self.metric,
        }


# ----------------------------------------------------------------------
# Promotion
# ----------------------------------------------------------------------
def select_survivors(
    scores: Mapping[str, float],
    order: Sequence[str],
    *,
    keep: float,
    tolerance: float = 0.0,
) -> list[str]:
    """Promote the top ``keep`` fraction plus verdict-judged near-ties.

    ``order`` breaks score ties deterministically (enumeration order).
    The cutoff is the worst promoted score; a candidate beyond the cut
    still survives when :func:`relative_verdict` refuses to call its
    score a regression against the cutoff at ``tolerance`` — the
    statistically honest version of "don't kill a coin flip".
    Survivors come back in ``order``.
    """
    rank = {cid: position for position, cid in enumerate(order)}
    ranked = sorted(order, key=lambda cid: (scores[cid], rank[cid]))
    count = max(1, math.ceil(len(ranked) * keep))
    promoted = set(ranked[:count])
    cutoff = scores[ranked[count - 1]]
    for cid in ranked[count:]:
        verdict, _ratio = relative_verdict(
            cutoff, scores[cid], tolerance=tolerance
        )
        if verdict != "regression":
            promoted.add(cid)
    return [cid for cid in order if cid in promoted]


# ----------------------------------------------------------------------
# Truncated-rung execution
# ----------------------------------------------------------------------
def _truncated_store_key(point: SweepPoint, max_events: int) -> dict:
    """The point's store key *augmented* with its event budget.

    Keeping ``max_events`` in the key means a truncated rung can never
    collide with (or be served from) a full-fidelity entry for the same
    point — and vice versa.  ``ResultSet`` surfaces the extra key field
    in the cell label, so partial-fidelity entries stay visibly
    separate in ``repro report`` too.
    """
    key = point.store_key()
    key["max_events"] = max_events
    return key


def _execute_truncated(point: SweepPoint, max_events: int) -> dict:
    """Worker body for a budgeted rung: supervised run, degrade to partial.

    Module-level (and driven through :func:`functools.partial`) so the
    fork pool can pickle it.
    """
    from repro.harness.pool import run_point_supervised
    from repro.harness.supervised import SupervisionPolicy

    policy = SupervisionPolicy(
        slice_events=min(20_000, max_events),
        max_events=max_events,
        max_retries=0,
        degrade=True,
    )
    report = run_point_supervised(point, policy=policy)
    return report.result.to_dict()


# ----------------------------------------------------------------------
# State persistence
# ----------------------------------------------------------------------
def _fingerprint(space: SearchSpace, options: ExploreOptions) -> str:
    payload = json.dumps(
        {"space": space.to_dict(), "options": options.to_dict()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _write_state(path: str, state: dict) -> None:
    """Atomic write: a mid-write kill leaves the previous state intact."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(state, handle, sort_keys=True, indent=2)
        handle.write("\n")
    os.replace(tmp, path)


def _load_state(path: str, fingerprint: str, log: LogFn) -> list[dict]:
    """Completed-rung entries from a matching state file, else nothing."""
    try:
        with open(path, encoding="utf-8") as handle:
            state = json.load(handle)
    except FileNotFoundError:
        return []
    except (OSError, json.JSONDecodeError) as failure:
        log(f"explore: ignoring unreadable state {path}: {failure}")
        return []
    if state.get("version") != STATE_VERSION:
        log(f"explore: ignoring state {path} (version mismatch)")
        return []
    if state.get("fingerprint") != fingerprint:
        log(
            f"explore: ignoring state {path} (space/options changed since "
            "it was written)"
        )
        return []
    rungs = state.get("rungs")
    return list(rungs) if isinstance(rungs, list) else []


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
def run_explore(
    space: SearchSpace,
    options: ExploreOptions | None = None,
    *,
    runner: Runner | None = None,
    jobs: int | None = None,
    state_path: str | None = None,
    fresh: bool = False,
    log: LogFn | None = None,
    progress=None,
) -> dict:
    """Run the full search and return the versioned artifact dict.

    ``state_path`` enables crash-safe resume: completed rungs replay
    from the file, and the interrupted rung re-executes with every
    already-simulated point served from the runner's result store.
    ``fresh=True`` ignores (and overwrites) any existing state.
    """
    options = options or ExploreOptions()
    runner = runner or default_runner()
    log = log or (lambda _line: None)
    metric = METRICS[options.metric]
    base_scale = options.effective_scale()

    candidates, skipped = space.materialize()
    if options.sample is not None:
        candidates = seeded_sample(
            candidates, options.sample, options.search_seed, salt="explore.space"
        )
    by_cid = {candidate.cid: candidate for candidate in candidates}
    if skipped:
        log(
            f"explore: skipped {len(skipped)} invalid combination(s) "
            "(cross-field config constraints)"
        )

    fingerprint = _fingerprint(space, options)
    completed: list[dict] = []
    if state_path and not fresh:
        completed = _load_state(state_path, fingerprint, log)
        if completed:
            log(
                f"explore: resuming from {state_path} "
                f"({len(completed)}/{len(options.rungs)} rungs done)"
            )
    completed = completed[: len(options.rungs)]

    survivors = [candidate.cid for candidate in candidates]
    for entry in completed:
        survivors = list(entry["survivors"])

    for rung_index, rung in enumerate(options.rungs):
        if rung_index < len(completed):
            continue
        active = [by_cid[cid] for cid in survivors]
        rung_scale = base_scale * rung.scale
        points = [
            SweepPoint(
                config=candidate.config,
                benchmark=benchmark,
                scale=rung_scale,
                seed=seed,
            )
            for candidate in active
            for benchmark in options.benchmarks
            for seed in options.seeds
        ]
        log(
            f"explore: rung {rung_index + 1}/{len(options.rungs)} — "
            f"{len(active)} candidate(s), {len(points)} run(s) at "
            f"scale {rung_scale:g}"
            + (
                f", budget {rung.max_events} events"
                if rung.max_events is not None
                else ""
            )
        )
        results = _run_rung(runner, points, rung, jobs=jobs, progress=progress)

        scores: dict[str, float] = {}
        per_benchmark: dict[str, dict[str, float]] = {}
        cursor = 0
        for candidate in active:
            medians: dict[str, float] = {}
            for benchmark in options.benchmarks:
                values = []
                for _seed in options.seeds:
                    value = metric.extract(results[points[cursor]])
                    cursor += 1
                    if value is not None:
                        values.append(float(value))
                if not values:
                    raise ExploreError(
                        f"metric {options.metric!r} produced no value for "
                        f"{candidate.cid} on {benchmark}"
                    )
                medians[benchmark] = statistics.median(values)
            per_benchmark[candidate.cid] = medians
            scores[candidate.cid] = geomean(list(medians.values()))

        if rung_index + 1 < len(options.rungs):
            survivors = select_survivors(
                scores,
                [candidate.cid for candidate in active],
                keep=rung.keep,
                tolerance=options.tolerance,
            )

        entry = {
            "rung": rung_index,
            "scale": rung_scale,
            "max_events": rung.max_events,
            "candidates": len(active),
            "runs": len(points),
            # Simulated work actually charged to this rung — summed from
            # the results themselves, so cached/replayed runs cost the
            # ledger exactly what the original runs did (this is what
            # makes resume and any --jobs N byte-identical).
            "simulated_cycles": sum(
                results[point].cycles for point in points
            ),
            "complete_runs": sum(
                1 for point in points if results[point].complete
            ),
            "scores": scores,
            "per_benchmark": per_benchmark,
            "survivors": list(survivors),
        }
        completed.append(entry)
        if state_path:
            _write_state(
                state_path,
                {
                    "version": STATE_VERSION,
                    "fingerprint": fingerprint,
                    "rungs": completed,
                },
            )

    return _assemble_artifact(
        space, options, candidates, skipped, completed, fingerprint
    )


def _run_rung(
    runner: Runner,
    points: Sequence[SweepPoint],
    rung: Rung,
    *,
    jobs: int | None,
    progress,
):
    """Full-fidelity rungs ride the runner; budgeted rungs go supervised."""
    if rung.max_events is None:
        return runner.sweep(points, jobs=jobs, progress=progress)

    store = runner.store
    max_events = rung.max_events

    def lookup(point: SweepPoint):
        if store is None:
            return None
        return store.load(_truncated_store_key(point, max_events))

    def publish(point: SweepPoint, result) -> None:
        if store is not None:
            store.store(_truncated_store_key(point, max_events), result)

    return run_sweep(
        points,
        jobs=jobs if jobs is not None else runner.jobs,
        lookup=lookup,
        publish=publish,
        progress=progress,
        execute=functools.partial(_execute_truncated, max_events=max_events),
    )


def _assemble_artifact(
    space: SearchSpace,
    options: ExploreOptions,
    candidates: Sequence[Candidate],
    skipped: Sequence[dict],
    rungs: Sequence[dict],
    fingerprint: str,
) -> dict:
    final = rungs[-1]
    by_cid = {candidate.cid: candidate for candidate in candidates}
    areas = {
        candidate.cid: config_relative_area(candidate.config)
        for candidate in candidates
    }

    points = [
        ParetoPoint(candidate=cid, performance=score, cost=areas[cid])
        for cid, score in sorted(final["scores"].items())
    ]
    front = pareto_front(points)
    knee = knee_point(front)

    def described(point: ParetoPoint) -> dict:
        payload = point.to_dict()
        payload["assignment"] = by_cid[point.candidate].assignment_dict()
        return payload

    # The ledger's proof of economy: what the search actually simulated
    # versus what an exhaustive full-fidelity grid over the same pool
    # would have cost (estimated from this search's own full-fidelity
    # runs, so the comparison is apples-to-apples).
    spent = sum(entry["simulated_cycles"] for entry in rungs)
    mean_full_run = final["simulated_cycles"] / final["runs"]
    grid_runs = len(candidates) * len(options.benchmarks) * len(options.seeds)
    exhaustive = mean_full_run * grid_runs
    savings = 1.0 - (spent / exhaustive) if exhaustive > 0 else 0.0

    return {
        "version": ARTIFACT_VERSION,
        "fingerprint": fingerprint,
        "space": space.to_dict(),
        "options": options.to_dict(),
        "candidates": [
            {
                "id": candidate.cid,
                "assignment": candidate.assignment_dict(),
                "area": areas[candidate.cid],
            }
            for candidate in candidates
        ],
        "skipped": list(skipped),
        "rungs": list(rungs),
        "pareto_front": [described(point) for point in front],
        "knee": described(knee) if knee is not None else None,
        "budget": {
            "spent_cycles": spent,
            "exhaustive_estimate_cycles": exhaustive,
            "savings_fraction": savings,
        },
    }


def artifact_json(artifact: dict) -> str:
    """The canonical byte encoding of an artifact (sorted keys)."""
    return json.dumps(artifact, sort_keys=True, indent=2) + "\n"
