"""SearchSpace DSL: serializable dimensions over ``GPUConfig`` knobs.

A :class:`SearchSpace` is a base configuration (a registry name or an
inline config dict) plus a list of *dimensions*, each binding a dotted
path into :meth:`GPUConfig.to_dict` — ``"ptw.num_walkers"``,
``"softwalker.enabled"``, ``"page_table.page_size"``, ``"walk_backend"``
— to a set of values:

* :class:`CategoricalDim` — an explicit value list.  A ``None`` choice
  *deletes* the key, matching ``to_dict``'s treatment of defaults
  (``walk_backend: None`` is absent from the fingerprint).
* :class:`IntRangeDim` — ``low..high`` inclusive with a ``step``.
* :class:`Pow2Dim` — every power of two from ``low`` to ``high``.

Typos fail fast: every dimension is validated by applying its values to
the base config through :meth:`GPUConfig.from_dict`, whose unknown-key
rejection carries a did-you-mean hint.  Combinations that violate a
*cross-field* constraint (e.g. a SoftPWB smaller than the PW warp) are
not errors of the space — they are skipped deterministically by
:meth:`SearchSpace.materialize` and reported to the caller.

Enumeration is the lexicographic cross product (first dimension
slowest), so candidate indices are stable across processes; sampling is
seeded through :func:`repro.analysis.stat_tests.stable_seed` and
returns candidates in enumeration order, which is what makes an
explore artifact byte-reproducible at any ``--jobs N``.
"""

from __future__ import annotations

import copy
import difflib
import itertools
import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence, TypeVar

from repro.analysis.stat_tests import stable_seed
from repro.config import DEFAULT_CONFIGS, GPUConfig

_T = TypeVar("_T")

#: Serialization format version stamped into every space dict.
SPACE_VERSION = 1


def _reject_unknown_keys(
    what: str, data: Mapping, known: Sequence[str]
) -> None:
    """Shared strict-key check with a did-you-mean hint."""
    unknown = sorted(set(data) - set(known))
    if not unknown:
        return
    hints = []
    for name in unknown:
        close = difflib.get_close_matches(name, known, n=1)
        hints.append(
            f"{name!r}" + (f" (did you mean {close[0]!r}?)" if close else "")
        )
    raise ValueError(f"unknown {what} key(s): {', '.join(hints)}")


# ----------------------------------------------------------------------
# Dimensions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CategoricalDim:
    """An explicit choice list; ``None`` deletes the key from the dict."""

    path: str
    values: tuple

    kind = "categorical"

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"dimension {self.path!r} needs at least one value")
        if len(set(map(repr, self.values))) != len(self.values):
            raise ValueError(f"dimension {self.path!r} has duplicate values")

    def choices(self) -> tuple:
        return self.values

    def to_dict(self) -> dict:
        return {"kind": self.kind, "path": self.path, "values": list(self.values)}


@dataclass(frozen=True)
class IntRangeDim:
    """Every integer from ``low`` to ``high`` inclusive, stepping ``step``."""

    path: str
    low: int
    high: int
    step: int = 1

    kind = "int_range"

    def __post_init__(self) -> None:
        if self.step < 1:
            raise ValueError(f"dimension {self.path!r}: step must be >= 1")
        if self.high < self.low:
            raise ValueError(f"dimension {self.path!r}: high < low")

    def choices(self) -> tuple:
        return tuple(range(self.low, self.high + 1, self.step))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "path": self.path,
            "low": self.low,
            "high": self.high,
            "step": self.step,
        }


@dataclass(frozen=True)
class Pow2Dim:
    """Every power of two from ``low`` to ``high`` inclusive."""

    path: str
    low: int
    high: int

    kind = "pow2"

    def __post_init__(self) -> None:
        for bound in (self.low, self.high):
            if bound < 1 or bound & (bound - 1):
                raise ValueError(
                    f"dimension {self.path!r}: bounds must be powers of two, "
                    f"got {bound}"
                )
        if self.high < self.low:
            raise ValueError(f"dimension {self.path!r}: high < low")

    def choices(self) -> tuple:
        out = []
        value = self.low
        while value <= self.high:
            out.append(value)
            value *= 2
        return tuple(out)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "path": self.path, "low": self.low, "high": self.high}


#: kind tag -> (class, required+optional serialized keys).
_DIMENSION_KINDS: dict[str, tuple[type, tuple[str, ...]]] = {
    "categorical": (CategoricalDim, ("kind", "path", "values")),
    "int_range": (IntRangeDim, ("kind", "path", "low", "high", "step")),
    "pow2": (Pow2Dim, ("kind", "path", "low", "high")),
}


def dimension_from_dict(data: Mapping) -> CategoricalDim | IntRangeDim | Pow2Dim:
    """Rebuild one dimension from its serialized form (strict keys)."""
    if not isinstance(data, Mapping):
        raise ValueError(f"dimension must be a mapping, got {type(data).__name__}")
    kind = data.get("kind")
    if kind not in _DIMENSION_KINDS:
        known = sorted(_DIMENSION_KINDS)
        message = f"unknown dimension kind {kind!r}; known kinds: {', '.join(known)}"
        close = difflib.get_close_matches(str(kind), known, n=1)
        if close:
            message += f" — did you mean {close[0]!r}?"
        raise ValueError(message)
    cls, keys = _DIMENSION_KINDS[kind]
    _reject_unknown_keys(f"{kind} dimension", data, keys)
    if "path" not in data:
        raise ValueError(f"{kind} dimension needs a 'path'")
    kwargs = {key: data[key] for key in keys if key in data and key != "kind"}
    return cls(**kwargs)


# ----------------------------------------------------------------------
# Assignment application
# ----------------------------------------------------------------------
def apply_assignment(base: Mapping, assignment: Mapping[str, Any]) -> dict:
    """Overlay dotted-path values onto a config dict; ``None`` deletes.

    The deletion rule mirrors :meth:`GPUConfig.to_dict`, which omits
    ``walk_backend`` when it is None — so a categorical dimension over
    ``[None, "oracle"]`` toggles cleanly between the default backend
    and a plugin one without perturbing any other fingerprint bit.
    """
    out = copy.deepcopy(dict(base))
    for path, value in assignment.items():
        node = out
        parts = path.split(".")
        for part in parts[:-1]:
            child = node.get(part)
            if not isinstance(child, dict):
                child = {}
                node[part] = child
            node = child
        if value is None:
            node.pop(parts[-1], None)
        else:
            node[parts[-1]] = value
    return out


# ----------------------------------------------------------------------
# Candidates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Candidate:
    """One enumerated point of a space: a built config plus its identity."""

    #: Position in the full lexicographic enumeration (stable id basis).
    index: int
    #: (path, value) pairs in dimension order.
    assignment: tuple[tuple[str, Any], ...]
    config: GPUConfig

    @property
    def cid(self) -> str:
        return f"c{self.index:04d}"

    def assignment_dict(self) -> dict:
        return dict(self.assignment)

    def label(self) -> str:
        return ",".join(
            f"{path}={'default' if value is None else value}"
            for path, value in self.assignment
        )


# ----------------------------------------------------------------------
# SearchSpace
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SearchSpace:
    """A base configuration crossed with a tuple of dimensions."""

    #: Registry name ("baseline") or an inline ``GPUConfig.to_dict`` subset.
    base: Any
    dimensions: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "dimensions", tuple(self.dimensions))
        if not self.dimensions:
            raise ValueError("a search space needs at least one dimension")
        paths = [dim.path for dim in self.dimensions]
        duplicates = sorted({p for p in paths if paths.count(p) > 1})
        if duplicates:
            raise ValueError(f"duplicate dimension path(s): {', '.join(duplicates)}")
        self._validate_dimensions()

    # -- validation -----------------------------------------------------
    def base_config(self) -> GPUConfig:
        if isinstance(self.base, str):
            return DEFAULT_CONFIGS.get(self.base)
        if isinstance(self.base, Mapping):
            return GPUConfig.from_dict(self.base)
        raise ValueError(
            f"space base must be a registry name or a config dict, "
            f"got {type(self.base).__name__}"
        )

    def _validate_dimensions(self) -> None:
        """Every dimension must build at least one valid config alone.

        Applying a single dimension's value to the base config routes
        through :meth:`GPUConfig.from_dict`, so a typoed path fails
        here with the config layer's did-you-mean error.  A value that
        only fails in *combination* with other dimensions is not an
        error of the space — :meth:`materialize` skips it.
        """
        base = self.base_config().to_dict()
        for dim in self.dimensions:
            last_error: Exception | None = None
            for value in dim.choices():
                try:
                    GPUConfig.from_dict(apply_assignment(base, {dim.path: value}))
                    break
                except (TypeError, ValueError, KeyError) as failure:
                    last_error = failure
            else:
                raise ValueError(
                    f"dimension {dim.path!r} has no valid value against the "
                    f"base config: {last_error}"
                ) from last_error

    # -- enumeration ----------------------------------------------------
    def size(self) -> int:
        total = 1
        for dim in self.dimensions:
            total *= len(dim.choices())
        return total

    def assignments(self) -> Iterator[tuple[tuple[str, Any], ...]]:
        """Lexicographic cross product; first dimension varies slowest."""
        paths = [dim.path for dim in self.dimensions]
        for combo in itertools.product(*(dim.choices() for dim in self.dimensions)):
            yield tuple(zip(paths, combo))

    def materialize(self) -> tuple[list[Candidate], list[dict]]:
        """Build every candidate config; returns (valid, skipped).

        Skipped entries are combinations that violate a cross-field
        config constraint; each carries its assignment and the error so
        the explore artifact can prove nothing vanished silently.
        """
        base = self.base_config().to_dict()
        valid: list[Candidate] = []
        skipped: list[dict] = []
        for index, assignment in enumerate(self.assignments()):
            try:
                config = GPUConfig.from_dict(
                    apply_assignment(base, dict(assignment))
                )
            except (TypeError, ValueError, KeyError) as failure:
                skipped.append(
                    {
                        "index": index,
                        "assignment": dict(assignment),
                        "error": str(failure),
                    }
                )
                continue
            valid.append(Candidate(index=index, assignment=assignment, config=config))
        if not valid:
            raise ValueError(
                "search space has no valid candidate: every combination "
                "violates a config constraint"
            )
        return valid, skipped

    # -- sampling -------------------------------------------------------
    def sample(self, n: int, seed: int) -> list[Candidate]:
        """A seeded subset of the valid candidates, in enumeration order."""
        valid, _skipped = self.materialize()
        return seeded_sample(valid, n, seed, salt="explore.space")

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": SPACE_VERSION,
            "base": self.base if isinstance(self.base, str) else dict(self.base),
            "dimensions": [dim.to_dict() for dim in self.dimensions],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SearchSpace":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"search space must be a mapping, got {type(data).__name__}"
            )
        _reject_unknown_keys("search space", data, ("version", "base", "dimensions"))
        version = data.get("version", SPACE_VERSION)
        if version != SPACE_VERSION:
            raise ValueError(
                f"unsupported search-space version {version!r} "
                f"(this build reads version {SPACE_VERSION})"
            )
        if "base" not in data or "dimensions" not in data:
            raise ValueError("search space needs 'base' and 'dimensions'")
        dimensions = data["dimensions"]
        if not isinstance(dimensions, Sequence) or isinstance(dimensions, (str, bytes)):
            raise ValueError("'dimensions' must be a list of dimension dicts")
        return cls(
            base=data["base"],
            dimensions=tuple(dimension_from_dict(d) for d in dimensions),
        )


def load_space(path: str | Path) -> SearchSpace:
    """Load a space from a JSON file; a leading ``@`` is tolerated."""
    text = str(path)
    if text.startswith("@"):
        text = text[1:]
    with open(text, encoding="utf-8") as handle:
        return SearchSpace.from_dict(json.load(handle))


def seeded_sample(
    items: Sequence[_T], n: int, seed: int, *, salt: str = "sample"
) -> list[_T]:
    """Deterministic sample without replacement, original order kept.

    Seeded through :func:`stable_seed` (crc32, not interpreter-salted
    ``hash``), so the same (items, n, seed) triple picks the same
    subset on every host — the property ``repro sweep --sample`` and
    the explore driver both lean on.  ``n >= len(items)`` returns
    everything.
    """
    if n < 1:
        raise ValueError(f"sample size must be >= 1, got {n}")
    if n >= len(items):
        return list(items)
    rng = random.Random(stable_seed(salt, seed))
    chosen = sorted(rng.sample(range(len(items)), n))
    return [items[i] for i in chosen]
