"""Pareto-front extraction: performance against the area cost model.

The end product of an exploration is not one winner but a *front*: the
set of candidates no other candidate beats on both axes at once —
simulated performance (lower cycles is better) and hardware cost (the
:func:`repro.analysis.area.config_relative_area` scale, lower is
better).  :func:`knee_point` then names the front's best balance: the
point closest to the utopia corner after min–max normalization, the
standard knee heuristic for two-objective fronts.

Everything here is pure arithmetic over already-computed numbers, so
it is deterministic by construction; ties break on candidate id.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.area import config_relative_area

__all__ = ["ParetoPoint", "config_relative_area", "pareto_front", "knee_point"]


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate's position in (performance, cost) space."""

    #: Candidate id ("c0003") — the join key back into the artifact.
    candidate: str
    #: Performance score; lower is better (geomean of median cycles).
    performance: float
    #: Relative hardware area; lower is better.
    cost: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """No worse on both axes and strictly better on at least one."""
        return (
            self.performance <= other.performance
            and self.cost <= other.cost
            and (self.performance < other.performance or self.cost < other.cost)
        )

    def to_dict(self) -> dict:
        return {
            "candidate": self.candidate,
            "performance": self.performance,
            "cost": self.cost,
        }


def pareto_front(points: Sequence[ParetoPoint]) -> list[ParetoPoint]:
    """The non-dominated subset, sorted by (cost, performance, id).

    Duplicate (performance, cost) coordinates all survive — two
    configs that measure identically are both legitimate answers.
    """
    front = [
        point
        for point in points
        if not any(other.dominates(point) for other in points)
    ]
    return sorted(front, key=lambda p: (p.cost, p.performance, p.candidate))


def knee_point(front: Sequence[ParetoPoint]) -> ParetoPoint | None:
    """The front point nearest the utopia corner, min–max normalized.

    Both axes are rescaled to [0, 1] over the front (a degenerate axis
    — all points equal — contributes zero), so the knee is invariant
    to the very different magnitudes of cycles and relative area.
    Returns None for an empty front; ties break deterministically.
    """
    if not front:
        return None
    perf_lo = min(p.performance for p in front)
    perf_hi = max(p.performance for p in front)
    cost_lo = min(p.cost for p in front)
    cost_hi = max(p.cost for p in front)

    def normalized(value: float, lo: float, hi: float) -> float:
        return (value - lo) / (hi - lo) if hi > lo else 0.0

    def distance(point: ParetoPoint) -> float:
        return math.hypot(
            normalized(point.performance, perf_lo, perf_hi),
            normalized(point.cost, cost_lo, cost_hi),
        )

    return min(front, key=lambda p: (distance(p), p.performance, p.cost, p.candidate))
