"""SoftPWB: the per-SM software page-walk buffer and its status bitmap.

Section 4.4: each SM repurposes a slice of shared memory as a request
buffer (96 bits per entry: 33-bit VPN, 31-bit node PFN, 2-bit level) and
the SoftWalker Controller tracks entry state with a 2-bit-per-thread
bitmap — invalid (no request), valid (ready), processing (walk running).
"""

from __future__ import annotations

import enum

from repro.ptw.request import WalkRequest

#: Bits per SoftPWB entry: VPN + page-table-base PFN + current level.
ENTRY_BITS = 33 + 31 + 2
#: Reserved per-entry storage, rounded to a power-of-two slot.
ENTRY_RESERVED_BITS = 96


class SlotState(enum.Enum):
    INVALID = 0
    VALID = 1
    PROCESSING = 2


class SoftPWB:
    """Fixed-capacity request buffer with a 2-bit status per slot."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("SoftPWB needs at least one entry")
        self.capacity = entries
        self._slots: list[WalkRequest | None] = [None] * entries
        self._states: list[SlotState] = [SlotState.INVALID] * entries

    # ------------------------------------------------------------------
    # Controller-side operations (Figure 11, steps 4-6)
    # ------------------------------------------------------------------
    def insert(self, request: WalkRequest) -> int | None:
        """Fill an invalid slot with a request; returns its index."""
        for index, state in enumerate(self._states):
            if state is SlotState.INVALID:
                self._slots[index] = request
                self._states[index] = SlotState.VALID
                return index
        return None

    def take_valid(self) -> tuple[int, WalkRequest] | None:
        """Pick a valid entry and mark it processing (walk launch)."""
        for index, state in enumerate(self._states):
            if state is SlotState.VALID:
                self._states[index] = SlotState.PROCESSING
                request = self._slots[index]
                assert request is not None
                return index, request
        return None

    def complete(self, index: int) -> None:
        """Walk finished: slot returns to invalid."""
        if self._states[index] is not SlotState.PROCESSING:
            raise ValueError(f"slot {index} is not processing")
        self._states[index] = SlotState.INVALID
        self._slots[index] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state(self, index: int) -> SlotState:
        return self._states[index]

    def count(self, state: SlotState) -> int:
        return sum(1 for s in self._states if s is state)

    @property
    def occupied(self) -> int:
        return self.capacity - self.count(SlotState.INVALID)

    @property
    def has_space(self) -> bool:
        return self.count(SlotState.INVALID) > 0

    def requests(self) -> list[WalkRequest]:
        """Every buffered request (valid or processing), slot order."""
        return [request for request in self._slots if request is not None]

    def bitmap_bits(self) -> int:
        """Storage the status bitmap costs (2 bits per slot, Section 5.2)."""
        return 2 * self.capacity
