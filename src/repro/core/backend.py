"""Walk backends: software (PW Warps), and the hybrid HW+SW design.

A *backend* is whatever resolves walk requests for the L2 TLB
controller: it exposes ``submit(request)`` and fires ``on_complete``
with the finished request.  Backends are resolved by name through
:data:`repro.arch.registry.WALK_BACKENDS` — ``"hardware"`` builds
:class:`~repro.ptw.subsystem.HardwareWalkBackend`, ``"softwalker"``
and ``"hybrid"`` build the classes here, and plugins may register
further names (see docs/architecture.md for the backend contract and a
worked example under ``examples/plugins/``).
"""

from __future__ import annotations

from typing import Callable

from repro.config import GPUConfig
from repro.core.controller import SoftWalkerController
from repro.core.distributor import RequestDistributor
from repro.gpu.sm import SM
from repro.pagetable.radix import RadixPageTable
from repro.ptw.request import WalkRequest
from repro.ptw.subsystem import HardwareWalkBackend
from repro.ptw.walker import PteMemoryPort, WalkOutcome
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry
from repro.tlb.pwc import PageWalkCache

CompletionCallback = Callable[[WalkRequest, WalkOutcome], None]


class SoftWalkerBackend:
    """Software page walking across every SM's PW Warp."""

    def __init__(
        self,
        engine: Engine,
        config: GPUConfig,
        sms: list[SM],
        page_table: RadixPageTable,
        pte_port: PteMemoryPort,
        pwc: PageWalkCache | None,
        stats: StatsRegistry,
    ) -> None:
        sw = config.softwalker
        self.stats = stats
        self.engine = engine
        self._sms = sms
        self.on_complete: CompletionCallback | None = None
        # One-way hop each direction; the round trip equals the L2 TLB
        # access latency (Section 6.1 methodology).
        hop = max(1, config.l2_tlb.latency // 2)
        self.controllers = [
            SoftWalkerController(
                sm,
                engine,
                sw,
                page_table,
                pte_port,
                pwc,
                stats,
                communication_latency=hop,
            )
            for sm in sms
        ]
        self.distributor = RequestDistributor(
            num_sms=config.num_sms,
            capacity_per_sm=sw.softpwb_entries,
            stats=stats,
            policy=sw.distributor_policy,
            # Bound methods, not lambdas: the distributor is part of the
            # checkpointed state graph and must deepcopy/pickle cleanly.
            idleness=self._sm_idleness,
            clock=self._clock_now,
        )
        self.distributor.dispatch = self._dispatch
        for controller in self.controllers:
            controller.on_complete = self._controller_complete

    def _sm_idleness(self, sm_id: int) -> int:
        return self._sms[sm_id].port_busy_until()

    def _clock_now(self) -> int:
        return self.engine.now

    def submit(self, request: WalkRequest) -> None:
        self.stats.counters.add("softwalker.submitted")
        self.distributor.submit(request)

    def _dispatch(self, sm_id: int, request: WalkRequest) -> None:
        self.controllers[sm_id].receive(request)

    def _controller_complete(
        self, sm_id: int, request: WalkRequest, outcome: WalkOutcome
    ) -> None:
        # FL2T decrements the per-core counter at the distributor.
        self.distributor.complete(sm_id)
        if self.on_complete is None:
            raise RuntimeError("SoftWalkerBackend.on_complete not wired")
        self.on_complete(request, outcome)

    @property
    def in_flight(self) -> int:
        return self.distributor.in_flight

    def live_requests(self) -> list[WalkRequest]:
        """Every request the software backend owns (audit support)."""
        live = self.distributor.overflow_requests()
        for controller in self.controllers:
            live.extend(controller.live_requests())
        return live

    def register_metrics(self, metrics) -> None:
        """Expose distributor backlog and PW-warp occupancy as gauges."""
        self.distributor.register_metrics(metrics)
        metrics.register_gauge(
            "softwalker.active_walks",
            lambda: sum(c.active_walks for c in self.controllers),
        )
        metrics.register_gauge(
            "softwalker.softpwb_occupied",
            lambda: sum(c.softpwb.occupied for c in self.controllers),
        )


class HybridBackend:
    """Hardware walkers first, PW Warps when none are free (Section 5.4)."""

    def __init__(
        self, hardware: HardwareWalkBackend, software: SoftWalkerBackend
    ) -> None:
        self.hardware = hardware
        self.software = software
        self._on_complete: CompletionCallback | None = None

    @property
    def on_complete(self) -> CompletionCallback | None:
        return self._on_complete

    @on_complete.setter
    def on_complete(self, callback: CompletionCallback) -> None:
        self._on_complete = callback
        self.hardware.on_complete = callback
        self.software.on_complete = callback

    def submit(self, request: WalkRequest) -> None:
        if self.hardware.has_free_walker:
            self.hardware.submit(request)
        else:
            self.software.submit(request)

    def live_requests(self) -> list[WalkRequest]:
        return [*self.hardware.live_requests(), *self.software.live_requests()]

    def register_metrics(self, metrics) -> None:
        self.hardware.register_metrics(metrics)
        self.software.register_metrics(metrics)
