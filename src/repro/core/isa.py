"""SoftWalker ISA extension (Table 2) and the PW-warp code block (Figure 14).

Four instructions let a GPU thread complete an entire page walk without
hardware walkers:

* ``LDPT``  — load a PTE by physical address, bypassing the TLBs.
* ``FL2T``  — fill the L2 TLB with the final translation (also
  decrements the Request Distributor's per-core counter).
* ``FPWC``  — fill a Page Walk Cache entry with a discovered node.
* ``FFB``   — log an invalid PTE into the Fault Buffer for UVM handling.

:class:`PageWalkProgram` renders the Figure 14 loop into a concrete
instruction sequence for a walk of a given depth; the timing model uses
its counts, and tests assert its structure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.Enum):
    """Ordinary and extended opcodes appearing in the PW-warp routine."""

    #: Integer ALU work: request decode, offset computation, loop control.
    IALU = "ialu"
    #: Load from the SoftPWB in shared memory.
    LDS = "lds"
    #: Extended: load page table entry, bypassing the TLB (Table 2).
    LDPT = "ldpt"
    #: Extended: fill L2 TLB entry with the PTE (Table 2).
    FL2T = "fl2t"
    #: Extended: fill Page Walk Cache entry (Table 2).
    FPWC = "fpwc"
    #: Extended: fill Fault Buffer with invalid PTE (Table 2).
    FFB = "ffb"


#: The extended opcodes SoftWalker adds to the GPU ISA.
EXTENSION_OPCODES = (Opcode.LDPT, Opcode.FL2T, Opcode.FPWC, Opcode.FFB)

ISA_DESCRIPTIONS = {
    Opcode.LDPT: (
        "Load page table entry from the page table. "
        "This instruction bypasses accessing TLB."
    ),
    Opcode.FL2T: "Fill L2 TLB entry with the PTE.",
    Opcode.FPWC: "Fill Page Walk Cache entry.",
    Opcode.FFB: "Fill Fault Buffer with invalid PTE.",
}

#: Architectural registers one PW-warp thread needs (Section 4.2: "a PW
#: Warp requires only 16 registers").
PW_WARP_REGISTERS = 16


@dataclass(frozen=True)
class Instruction:
    """One instruction of the PW-warp routine."""

    opcode: Opcode
    #: Page-table level the instruction operates on (0 = outside loop).
    level: int = 0

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LDS, Opcode.LDPT)


class PageWalkProgram:
    """The software page-walk routine of Figure 14, as data.

    The driver preloads this code into device memory before kernel
    launch; each PW-warp thread executes it once per assigned request.
    """

    #: Instructions before the loop: load the request from the SoftPWB
    #: and decode base address, VPN, and starting level (Fig. 14 l.1-6).
    PROLOGUE = (
        Instruction(Opcode.IALU),
        Instruction(Opcode.LDS),
        Instruction(Opcode.IALU),
        Instruction(Opcode.IALU),
        Instruction(Opcode.IALU),
    )

    @staticmethod
    def level_body(level: int, *, is_leaf: bool, faulted: bool = False) -> tuple[Instruction, ...]:
        """One loop iteration: offset compute, LDPT, then FPWC or FFB/FL2T."""
        body = [
            Instruction(Opcode.IALU, level),  # offset computation (l.10)
            Instruction(Opcode.IALU, level),  # base + offset address math
            Instruction(Opcode.LDPT, level),  # page table access (l.13)
        ]
        if faulted:
            body.append(Instruction(Opcode.FFB, level))  # fault logging (l.17)
        elif is_leaf:
            body.append(Instruction(Opcode.FL2T, level))  # TLB fill (l.26)
        else:
            body.append(Instruction(Opcode.FPWC, level))  # PWC update (l.21)
        return tuple(body)

    @classmethod
    def for_walk(
        cls, start_level: int, *, fault_level: int | None = None
    ) -> tuple[Instruction, ...]:
        """The full dynamic instruction trace of one walk.

        Args:
            start_level: level of the first table consulted (PWC hit level).
            fault_level: if set, the walk finds an invalid PTE there and
                terminates with FFB instead of reaching FL2T.
        """
        if start_level < 1:
            raise ValueError("walk must start at level >= 1")
        trace: list[Instruction] = list(cls.PROLOGUE)
        for level in range(start_level, 0, -1):
            faulted = fault_level is not None and level == fault_level
            trace.extend(cls.level_body(level, is_leaf=level == 1, faulted=faulted))
            if faulted:
                break
        return tuple(trace)

    @classmethod
    def instruction_counts(cls, start_level: int) -> dict[Opcode, int]:
        """Static mix of a fault-free walk from ``start_level``."""
        counts: dict[Opcode, int] = {}
        for inst in cls.for_walk(start_level):
            counts[inst.opcode] = counts.get(inst.opcode, 0) + 1
        return counts
