"""Request Distributor: assigns L2 TLB misses to SMs (Section 4.4).

Lives beside the L2 TLB.  A per-core counter tracks how many requests
are outstanding at each SM so walks are only dispatched to cores whose
PW Warp has room (counter < SoftPWB capacity); when every core is full,
requests wait in a global overflow queue and drain as FL2T completions
decrement the counters.  Selection policies are
:class:`SelectionPolicy` objects resolved by name through
:data:`repro.arch.registry.DISTRIBUTOR_POLICIES` — the paper compares
the built-in three in Figure 26 and adopts round-robin.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable

from repro.arch.registry import DISTRIBUTOR_POLICIES
from repro.config import DistributorPolicy
from repro.ptw.request import WalkRequest
from repro.sim.stats import StatsRegistry


class SelectionPolicy:
    """Picks which available SM receives the next walk request.

    Subclasses implement :meth:`select`; ``available`` is the non-empty
    list of SM ids with SoftPWB room, in ascending order, and
    ``distributor`` grants access to cursor-free machine state (core
    count, idleness probe).  Policies own any selection state they need
    (cursor, RNG) so a checkpointed machine deep-copies them along with
    everything else.  Set ``requires_idleness`` when the policy needs
    the distributor's idleness probe wired.
    """

    name = "?"
    requires_idleness = False

    def select(self, available: list[int], distributor: "RequestDistributor") -> int:
        raise NotImplementedError


class RoundRobinSelection(SelectionPolicy):
    """First available core at or after a rotating cursor (the default)."""

    name = DistributorPolicy.ROUND_ROBIN

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, available: list[int], distributor: "RequestDistributor") -> int:
        num_sms = distributor.num_sms
        cursor = self._cursor
        sm = min(available, key=lambda s: (s - cursor) % num_sms)
        self._cursor = (sm + 1) % num_sms
        return sm


class RandomSelection(SelectionPolicy):
    """Uniform choice among available cores, seeded for determinism."""

    name = DistributorPolicy.RANDOM

    def __init__(self, *, seed: int = 97) -> None:
        self._rng = random.Random(seed)

    def select(self, available: list[int], distributor: "RequestDistributor") -> int:
        return self._rng.choice(available)


class StallAwareSelection(SelectionPolicy):
    """Prefer the most idle core, judged by the wired idleness probe."""

    name = DistributorPolicy.STALL_AWARE
    requires_idleness = True

    def select(self, available: list[int], distributor: "RequestDistributor") -> int:
        probe = distributor.idleness
        assert probe is not None
        return min(available, key=probe)


class RequestDistributor:
    """Per-core counters plus a pluggable core-selection policy."""

    def __init__(
        self,
        num_sms: int,
        capacity_per_sm: int,
        stats: StatsRegistry,
        *,
        policy: str | SelectionPolicy = DistributorPolicy.ROUND_ROBIN,
        idleness: Callable[[int], int] | None = None,
        seed: int = 97,
        clock: Callable[[], int] | None = None,
    ) -> None:
        if isinstance(policy, str):
            try:
                policy = DISTRIBUTOR_POLICIES.create(policy, seed=seed)
            except KeyError as miss:
                raise ValueError(str(miss)) from None
        if policy.requires_idleness and idleness is None:
            raise ValueError("stall-aware policy needs an idleness probe")
        self.num_sms = num_sms
        self.capacity = capacity_per_sm
        self.stats = stats
        #: The live policy object; ``policy`` stays the name string for
        #: introspection and anything that compared it historically.
        self.selection = policy
        self.policy = policy.name
        self.idleness = idleness
        self._idleness = idleness  # legacy alias
        self._trace = stats.obs.trace
        #: Simulation-time probe for trace timestamps; falls back to each
        #: request's enqueue time when the backend wires no clock.
        self._clock = clock
        self._counters = [0] * num_sms
        self._overflow: deque[WalkRequest] = deque()
        #: Wired by the backend: delivers a request to one SM's controller.
        self.dispatch: Callable[[int, WalkRequest], None] | None = None

    # ------------------------------------------------------------------
    # Selection (Figure 11, steps 1-3)
    # ------------------------------------------------------------------
    def _available(self) -> list[int]:
        return [sm for sm in range(self.num_sms) if self._counters[sm] < self.capacity]

    def _select(self) -> int | None:
        available = self._available()
        if not available:
            return None
        return self.selection.select(available, self)

    def _now(self, request: WalkRequest) -> int:
        return self._clock() if self._clock is not None else request.enqueue_time

    def submit(self, request: WalkRequest) -> None:
        """Assign ``request`` to a core, or park it until one frees up."""
        sm = self._select()
        if sm is None:
            self._overflow.append(request)
            self.stats.counters.add("distributor.overflow")
            if self._trace.enabled:
                now = self._now(request)
                self._trace.instant(
                    "distributor", "distributor.overflow", now, vpn=request.vpn
                )
                self._trace.counter(
                    "distributor",
                    "distributor.overflow_depth",
                    now,
                    depth=len(self._overflow),
                )
            return
        self._send(sm, request)

    def _send(self, sm: int, request: WalkRequest) -> None:
        if self.dispatch is None:
            raise RuntimeError("RequestDistributor.dispatch not wired")
        self._counters[sm] += 1
        self.stats.counters.add("distributor.dispatched")
        if self._trace.enabled:
            self._trace.instant(
                "distributor",
                "distributor.dispatch",
                self._now(request),
                id=request.trace_id,
                sm=sm,
                vpn=request.vpn,
            )
        self.dispatch(sm, request)

    # ------------------------------------------------------------------
    # Completion (Figure 11, step 4: FL2T decrements the counter)
    # ------------------------------------------------------------------
    def complete(self, sm: int) -> None:
        if self._counters[sm] <= 0:
            raise ValueError(f"counter underflow for SM {sm}")
        self._counters[sm] -= 1
        if self._overflow:
            target = self._select()
            if target is not None:
                self._send(target, self._overflow.popleft())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def register_metrics(self, metrics) -> None:
        """Expose dispatch backlog state as sampled gauges."""
        metrics.register_gauge("distributor.in_flight", lambda: self.in_flight)
        metrics.register_gauge(
            "distributor.overflow_depth", lambda: len(self._overflow)
        )

    def counter(self, sm: int) -> int:
        return self._counters[sm]

    @property
    def overflow_depth(self) -> int:
        return len(self._overflow)

    def overflow_requests(self) -> list[WalkRequest]:
        """Requests parked in the global overflow queue (audit support)."""
        return list(self._overflow)

    @property
    def in_flight(self) -> int:
        return sum(self._counters)
