"""Request Distributor: assigns L2 TLB misses to SMs (Section 4.4).

Lives beside the L2 TLB.  A per-core counter tracks how many requests
are outstanding at each SM so walks are only dispatched to cores whose
PW Warp has room (counter < SoftPWB capacity); when every core is full,
requests wait in a global overflow queue and drain as FL2T completions
decrement the counters.  Three selection policies are modelled — the
paper compares them in Figure 26 and adopts round-robin.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable

from repro.config import DistributorPolicy
from repro.ptw.request import WalkRequest
from repro.sim.stats import StatsRegistry


class RequestDistributor:
    """Per-core counters plus a pluggable core-selection policy."""

    def __init__(
        self,
        num_sms: int,
        capacity_per_sm: int,
        stats: StatsRegistry,
        *,
        policy: str = DistributorPolicy.ROUND_ROBIN,
        idleness: Callable[[int], int] | None = None,
        seed: int = 97,
        clock: Callable[[], int] | None = None,
    ) -> None:
        if policy not in DistributorPolicy.ALL:
            raise ValueError(f"unknown distributor policy {policy!r}")
        if policy == DistributorPolicy.STALL_AWARE and idleness is None:
            raise ValueError("stall-aware policy needs an idleness probe")
        self.num_sms = num_sms
        self.capacity = capacity_per_sm
        self.stats = stats
        self.policy = policy
        self._idleness = idleness
        self._trace = stats.obs.trace
        #: Simulation-time probe for trace timestamps; falls back to each
        #: request's enqueue time when the backend wires no clock.
        self._clock = clock
        self._counters = [0] * num_sms
        self._cursor = 0
        self._rng = random.Random(seed)
        self._overflow: deque[WalkRequest] = deque()
        #: Wired by the backend: delivers a request to one SM's controller.
        self.dispatch: Callable[[int, WalkRequest], None] | None = None

    # ------------------------------------------------------------------
    # Selection (Figure 11, steps 1-3)
    # ------------------------------------------------------------------
    def _available(self) -> list[int]:
        return [sm for sm in range(self.num_sms) if self._counters[sm] < self.capacity]

    def _select(self) -> int | None:
        available = self._available()
        if not available:
            return None
        if self.policy == DistributorPolicy.RANDOM:
            return self._rng.choice(available)
        if self.policy == DistributorPolicy.STALL_AWARE:
            assert self._idleness is not None
            return min(available, key=self._idleness)
        # Round-robin: first available core at or after the cursor.
        for offset in range(self.num_sms):
            sm = (self._cursor + offset) % self.num_sms
            if self._counters[sm] < self.capacity:
                self._cursor = (sm + 1) % self.num_sms
                return sm
        return None

    def _now(self, request: WalkRequest) -> int:
        return self._clock() if self._clock is not None else request.enqueue_time

    def submit(self, request: WalkRequest) -> None:
        """Assign ``request`` to a core, or park it until one frees up."""
        sm = self._select()
        if sm is None:
            self._overflow.append(request)
            self.stats.counters.add("distributor.overflow")
            if self._trace.enabled:
                now = self._now(request)
                self._trace.instant(
                    "distributor", "distributor.overflow", now, vpn=request.vpn
                )
                self._trace.counter(
                    "distributor",
                    "distributor.overflow_depth",
                    now,
                    depth=len(self._overflow),
                )
            return
        self._send(sm, request)

    def _send(self, sm: int, request: WalkRequest) -> None:
        if self.dispatch is None:
            raise RuntimeError("RequestDistributor.dispatch not wired")
        self._counters[sm] += 1
        self.stats.counters.add("distributor.dispatched")
        if self._trace.enabled:
            self._trace.instant(
                "distributor",
                "distributor.dispatch",
                self._now(request),
                id=request.trace_id,
                sm=sm,
                vpn=request.vpn,
            )
        self.dispatch(sm, request)

    # ------------------------------------------------------------------
    # Completion (Figure 11, step 4: FL2T decrements the counter)
    # ------------------------------------------------------------------
    def complete(self, sm: int) -> None:
        if self._counters[sm] <= 0:
            raise ValueError(f"counter underflow for SM {sm}")
        self._counters[sm] -= 1
        if self._overflow:
            target = self._select()
            if target is not None:
                self._send(target, self._overflow.popleft())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def register_metrics(self, metrics) -> None:
        """Expose dispatch backlog state as sampled gauges."""
        metrics.register_gauge("distributor.in_flight", lambda: self.in_flight)
        metrics.register_gauge(
            "distributor.overflow_depth", lambda: len(self._overflow)
        )

    def counter(self, sm: int) -> int:
        return self._counters[sm]

    @property
    def overflow_depth(self) -> int:
        return len(self._overflow)

    def overflow_requests(self) -> list[WalkRequest]:
        """Requests parked in the global overflow queue (audit support)."""
        return list(self._overflow)

    @property
    def in_flight(self) -> int:
        return sum(self._counters)
