"""SoftWalker Controller: per-SM orchestration of the PW Warp.

Section 4.4's bottom half: the controller receives requests from the
Request Distributor, parks them in the SoftPWB, and launches PW-warp
threads (up to 32 concurrent walks per SM).  The walk itself executes
the Figure 14 routine: per-instruction issue through the SM's pipeline
(with PW-warp priority), LDPT reads priced by the L2 cache / DRAM, FPWC
fills into the shared Page Walk Cache, and a final FL2T hop back to the
L2 TLB.
"""

from __future__ import annotations

from typing import Callable

from repro.config import SoftWalkerConfig
from repro.core.isa import PageWalkProgram
from repro.core.softpwb import SoftPWB
from repro.gpu.sm import SM
from repro.pagetable.radix import RadixPageTable
from repro.ptw.request import WalkRequest
from repro.ptw.walker import PteMemoryPort, WalkOutcome
from repro.sim.engine import Engine, batch_dispatch
from repro.sim.stats import StatsRegistry
from repro.tlb.pwc import PageWalkCache

CompletionCallback = Callable[[int, WalkRequest, WalkOutcome], None]


class SoftWalkerController:
    """One SM's PW-warp manager: SoftPWB, status bitmap, walk launch."""

    def __init__(
        self,
        sm: SM,
        engine: Engine,
        config: SoftWalkerConfig,
        page_table: RadixPageTable,
        pte_port: PteMemoryPort,
        pwc: PageWalkCache | None,
        stats: StatsRegistry,
        *,
        communication_latency: int,
    ) -> None:
        self.sm = sm
        self.engine = engine
        self.config = config
        self.page_table = page_table
        self.pte_port = pte_port
        self.pwc = pwc
        self.stats = stats
        #: One-way SM <-> L2 TLB hop; a walk pays it twice (request
        #: delivery and FL2T return), totalling the L2 TLB access
        #: latency per the paper's methodology.
        self.communication_latency = communication_latency
        self.softpwb = SoftPWB(config.softpwb_entries)
        self._trace = stats.obs.trace
        self._active_walks = 0
        #: Requests dispatched by the distributor but still travelling
        #: over the interconnect (audit support: they are owned here).
        self._in_transit: list[WalkRequest] = []
        #: Wired by the backend: invoked at FL2T time with the result.
        self.on_complete: CompletionCallback | None = None

    # ------------------------------------------------------------------
    # Request arrival (from the Request Distributor)
    # ------------------------------------------------------------------
    def receive(self, request: WalkRequest) -> None:
        """A request arrives over the interconnect; buffer and maybe launch.

        Called at dispatch time; the request lands in the SoftPWB one
        communication hop after its L2 TLB miss resolved to a walk.
        """
        arrival = max(self.engine.now, request.enqueue_time) + self.communication_latency
        self._in_transit.append(request)
        self.engine.schedule_at(arrival, self._arrive, request)

    @batch_dispatch("_arrive_batch")
    def _arrive(self, request: WalkRequest) -> None:
        self._in_transit.remove(request)
        request.communication += self.communication_latency
        index = self.softpwb.insert(request)
        if index is None:
            # The distributor's per-core counter bounds in-flight requests
            # to the SoftPWB capacity, so this cannot happen unless wiring
            # is broken.
            raise RuntimeError(f"SoftPWB overflow on SM {self.sm.sm_id}")
        self.stats.counters.add("softwalker.received")
        if self._trace.enabled:
            self._trace.instant(
                f"sm{self.sm.sm_id}",
                "softwalker.arrive",
                self.engine.now,
                id=request.trace_id,
                vpn=request.vpn,
                slot=index,
                occupied=self.softpwb.occupied,
            )
        self._maybe_launch()

    def _arrive_batch(self, batch: list[tuple[WalkRequest]]) -> None:
        """Batch form of :meth:`_arrive` for same-cycle arrivals.

        Must stay exactly equivalent to calling :meth:`_arrive` once per
        request in order — including the per-request launch attempt,
        which interleaves walk starts with arrivals just as the
        per-event engine would.
        """
        arrive = self._arrive
        for (request,) in batch:
            arrive(request)

    # ------------------------------------------------------------------
    # PW-warp walk execution
    # ------------------------------------------------------------------
    def _maybe_launch(self) -> None:
        if self.config.simt_lockstep:
            self._maybe_launch_lockstep()
            return
        while self._active_walks < self.config.pw_threads_per_sm:
            taken = self.softpwb.take_valid()
            if taken is None:
                return
            index, request = taken
            self._active_walks += 1
            self._execute(index, request)

    def _maybe_launch_lockstep(self) -> None:
        """Ablation: one warp-wide batch at a time, levels in lockstep."""
        if self._active_walks:
            return  # the warp re-converges before taking new work
        batch: list[tuple[int, WalkRequest]] = []
        while len(batch) < self.config.pw_threads_per_sm:
            taken = self.softpwb.take_valid()
            if taken is None:
                break
            batch.append(taken)
        if batch:
            self._active_walks = len(batch)
            self._execute_lockstep(batch)

    def _execute(self, slot_index: int, request: WalkRequest) -> None:
        now = self.engine.now
        request.queueing += now - request.enqueue_time - request.communication
        if self._trace.enabled:
            self._trace.instant(
                f"sm{self.sm.sm_id}",
                "softwalker.walk_start",
                now,
                id=request.trace_id,
                vpn=request.vpn,
                active=self._active_walks,
            )
        t = self._issue_block(len(PageWalkProgram.PROLOGUE), now, request)

        steps = self.page_table.walk_path(request.vpn, request.start_level)
        access_cycles = 0
        outcome_pfn: int | None = None
        faulted = False
        fault_level = 0
        leaf_pte_address: int | None = None
        for step in steps:
            t = self._issue_block(self.config.instructions_per_level, t, request)
            completion = self.pte_port.read(step.pte_address, t)  # LDPT
            access_cycles += completion - t
            t = completion
            if step.is_leaf:
                leaf_pte_address = step.pte_address
            if not step.valid:
                # FFB: one more instruction to log the fault.
                t = self._issue_block(1, t, request)
                faulted = True
                fault_level = step.level
                break
            if not step.is_leaf and self.pwc is not None:
                # FPWC is issued as part of the level block; the fill
                # itself is a fire-and-forget store.
                self.pwc.fill(request.vpn, step.level - 1, step.value)
        if not faulted:
            outcome_pfn = steps[-1].value

        request.access += access_cycles
        request.faulted = faulted
        request.fault_level = fault_level
        # FL2T: result travels back to the L2 TLB.
        finish = t + self.communication_latency
        request.communication += self.communication_latency
        outcome = WalkOutcome(
            pfn=outcome_pfn,
            finish_time=finish,
            access_cycles=access_cycles,
            levels_accessed=len(steps),
            faulted=faulted,
            fault_level=fault_level,
            leaf_pte_address=leaf_pte_address,
        )
        self.stats.counters.add("softwalker.walks")
        self.engine.schedule_at(finish, self._finish, slot_index, request, outcome)

    def _execute_lockstep(self, batch: list[tuple[int, WalkRequest]]) -> None:
        """Walk a whole warp's requests level-by-level in lockstep.

        Each loop iteration issues one warp-wide instruction block and
        one warp-wide LDPT whose latency is the *maximum* over the
        lanes' PTE reads — memory divergence serialises the warp, which
        is exactly the penalty the independent-thread design avoids.
        """
        now = self.engine.now
        paths = []
        for _slot, request in batch:
            request.queueing += now - request.enqueue_time - request.communication
            paths.append(self.page_table.walk_path(request.vpn, request.start_level))
        lead = batch[0][1]
        t = self._issue_block(len(PageWalkProgram.PROLOGUE), now, lead)

        depth = max(len(path) for path in paths)
        outcomes: list[WalkOutcome | None] = [None] * len(batch)
        access_start = t
        for level_index in range(depth):
            t = self._issue_block(self.config.instructions_per_level, t, lead)
            level_done = t
            for lane, ((_slot, request), path) in enumerate(zip(batch, paths)):
                if outcomes[lane] is not None or level_index >= len(path):
                    continue
                step = path[level_index]
                completion = self.pte_port.read(step.pte_address, t)
                level_done = max(level_done, completion)
                if not step.valid:
                    outcomes[lane] = WalkOutcome(
                        pfn=None,
                        finish_time=completion,
                        access_cycles=completion - access_start,
                        levels_accessed=level_index + 1,
                        faulted=True,
                        fault_level=step.level,
                        leaf_pte_address=step.pte_address if step.is_leaf else None,
                    )
                elif step.is_leaf:
                    outcomes[lane] = WalkOutcome(
                        pfn=step.value,
                        finish_time=completion,
                        access_cycles=completion - access_start,
                        levels_accessed=level_index + 1,
                        faulted=False,
                        fault_level=0,
                        leaf_pte_address=step.pte_address,
                    )
                elif self.pwc is not None:
                    self.pwc.fill(request.vpn, step.level - 1, step.value)
            t = level_done  # the warp waits for its slowest lane

        finish = t + self.communication_latency
        for (slot, request), outcome in zip(batch, outcomes):
            assert outcome is not None
            request.access += t - access_start
            request.communication += self.communication_latency
            request.faulted = outcome.faulted
            request.fault_level = outcome.fault_level
            self.stats.counters.add("softwalker.walks")
            self.stats.counters.add("softwalker.lockstep_walks")
            self.engine.schedule_at(finish, self._finish, slot, request, outcome)

    def _issue_block(self, instructions: int, when: int, request: WalkRequest) -> int:
        """Issue a dependent block of PW-warp instructions at ``when``."""
        issued_done = self.sm.issue_priority(instructions, when)
        done = issued_done + self.config.instruction_cycles
        request.execution += done - when
        return done

    @batch_dispatch("_finish_batch")
    def _finish(self, slot_index: int, request: WalkRequest, outcome: WalkOutcome) -> None:
        self.softpwb.complete(slot_index)
        self._active_walks -= 1
        if self.on_complete is None:
            raise RuntimeError("SoftWalkerController.on_complete not wired")
        self.on_complete(self.sm.sm_id, request, outcome)
        self._maybe_launch()

    def _finish_batch(
        self, batch: list[tuple[int, WalkRequest, WalkOutcome]]
    ) -> None:
        """Batch form of :meth:`_finish` for same-cycle FL2T returns.

        Must stay exactly equivalent to the per-event sequence: each
        completion frees its SoftPWB slot and may launch the next walk
        before the following completion lands.
        """
        softpwb_complete = self.softpwb.complete
        sm_id = self.sm.sm_id
        for slot_index, request, outcome in batch:
            softpwb_complete(slot_index)
            self._active_walks -= 1
            on_complete = self.on_complete
            if on_complete is None:
                raise RuntimeError("SoftWalkerController.on_complete not wired")
            on_complete(sm_id, request, outcome)
            self._maybe_launch()

    @property
    def active_walks(self) -> int:
        return self._active_walks

    def live_requests(self) -> list[WalkRequest]:
        """Requests this controller owns: in transit + SoftPWB slots."""
        return [*self._in_transit, *self.softpwb.requests()]
