"""SoftWalker: the paper's primary contribution.

PW Warps (software page-table walkers on SM pipelines), the SoftPWB and
its status bitmap, the SoftWalker Controller, the Request Distributor,
the LDPT/FL2T/FPWC/FFB ISA extension, and the hybrid HW+SW mode.
"""

from repro.core.backend import HybridBackend, SoftWalkerBackend
from repro.core.controller import SoftWalkerController
from repro.core.distributor import RequestDistributor
from repro.core.isa import (
    EXTENSION_OPCODES,
    ISA_DESCRIPTIONS,
    PW_WARP_REGISTERS,
    Instruction,
    Opcode,
    PageWalkProgram,
)
from repro.core.softpwb import ENTRY_BITS, ENTRY_RESERVED_BITS, SlotState, SoftPWB

__all__ = [
    "HybridBackend",
    "SoftWalkerBackend",
    "SoftWalkerController",
    "RequestDistributor",
    "EXTENSION_OPCODES",
    "ISA_DESCRIPTIONS",
    "PW_WARP_REGISTERS",
    "Instruction",
    "Opcode",
    "PageWalkProgram",
    "ENTRY_BITS",
    "ENTRY_RESERVED_BITS",
    "SlotState",
    "SoftPWB",
]
