"""Observability: request-lifecycle tracing and time-series metrics.

Everything the simulator can tell you about *where time went* lives
here:

* :class:`~repro.obs.trace.TraceRecorder` — span/instant/counter events
  following each translation request through the machine, exported as
  Chrome trace-event JSON (``chrome://tracing`` / Perfetto) or JSONL.
* :class:`~repro.obs.metrics.MetricsRegistry` — component-registered
  gauges polled into time series by an engine-scheduled
  :class:`~repro.obs.metrics.MetricsSampler`.
* :class:`Observability` — the bundle a :class:`~repro.gpu.gpu.GPUSimulator`
  accepts; the default :data:`NULL_OBS` is all null objects, so an
  uninstrumented run pays only a guard branch per hook site.

Usage::

    from repro import Observability, baseline_config, run_workload

    obs = Observability.full()
    result = run_workload(baseline_config(), "gups", scale=0.1, obs=obs)
    obs.trace.write_chrome("trace.json")
    obs.metrics.write_json("metrics.json")

See docs/observability.md for the full guide and the metric naming
conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchCell,
    BenchComparison,
    BenchError,
    BenchHarness,
    BenchReport,
    CellVerdict,
    compare_reports,
    perf_metadata,
)
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    MetricsSampler,
    NullMetricsRegistry,
)
from repro.obs.profile import (
    collapsed_stacks,
    component_shares,
    site_component,
    write_collapsed,
)
from repro.obs.schema import TraceSchemaError, validate_chrome_trace
from repro.obs.trace import (
    NULL_TRACE,
    WALK_COMPONENTS,
    NullTraceRecorder,
    TraceRecorder,
    read_jsonl,
)

#: Default gauge-sampling period in cycles.
DEFAULT_SAMPLE_INTERVAL = 1000


@dataclass
class Observability:
    """The observability bundle threaded through one simulation.

    The default instance is fully disabled (null trace, null metrics,
    no engine profiling); use the class methods to switch pieces on.
    """

    trace: TraceRecorder | NullTraceRecorder = field(default=NULL_TRACE)
    metrics: MetricsRegistry | NullMetricsRegistry = field(default=NULL_METRICS)
    #: Cycles between gauge samples when metrics are enabled.
    sample_interval: int = DEFAULT_SAMPLE_INTERVAL
    #: Accumulate wall-clock per engine callback site (self-profiling).
    profile_engine: bool = False

    @property
    def enabled(self) -> bool:
        """True when any instrument is live."""
        return self.trace.enabled or self.metrics.enabled or self.profile_engine

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def tracing(cls) -> "Observability":
        """Trace events only."""
        return cls(trace=TraceRecorder())

    @classmethod
    def sampling(cls, interval: int = DEFAULT_SAMPLE_INTERVAL) -> "Observability":
        """Metrics time series only."""
        return cls(metrics=MetricsRegistry(), sample_interval=interval)

    @classmethod
    def full(cls, interval: int = DEFAULT_SAMPLE_INTERVAL) -> "Observability":
        """Tracing plus metrics (what ``repro trace`` uses)."""
        return cls(
            trace=TraceRecorder(),
            metrics=MetricsRegistry(),
            sample_interval=interval,
        )


#: Shared fully disabled bundle (the simulator default).
NULL_OBS = Observability()

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_SAMPLE_INTERVAL",
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_TRACE",
    "WALK_COMPONENTS",
    "BenchCell",
    "BenchComparison",
    "BenchError",
    "BenchHarness",
    "BenchReport",
    "CellVerdict",
    "MetricsRegistry",
    "MetricsSampler",
    "NullMetricsRegistry",
    "NullTraceRecorder",
    "Observability",
    "TraceRecorder",
    "TraceSchemaError",
    "collapsed_stacks",
    "compare_reports",
    "component_shares",
    "perf_metadata",
    "read_jsonl",
    "site_component",
    "validate_chrome_trace",
    "write_collapsed",
]
