"""Time-series metrics: gauges, counters, and the periodic sampler.

Components *register* zero-argument gauge callables (queue depth, MSHR
occupancy, hit rate, walker utilisation); a :class:`MetricsSampler` —
an ordinary engine-scheduled event — polls every gauge at a fixed cycle
interval and appends ``(cycle, value)`` points to per-gauge series.
Counters are plain named integers for code that wants to count without
dragging a :class:`~repro.sim.stats.StatsRegistry` around (e.g. the
harness memo cache).

Like the trace recorder, the registry has a null twin: registration and
sampling on :class:`NullMetricsRegistry` are no-ops, so wiring gauges
unconditionally costs nothing when metrics are off.

Sampler events are scheduled as *daemon* events (see
:meth:`repro.sim.engine.Engine.schedule_daemon`): they ride along while
real work is pending and are dropped once only housekeeping remains, so
sampling can never extend a simulation's cycle count.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from repro.obs.trace import NULL_TRACE


class _Counter:
    """Handle for one named metric counter."""

    __slots__ = ("_store", "_name")

    def __init__(self, store: dict[str, int], name: str) -> None:
        self._store = store
        self._name = name

    def inc(self, amount: int = 1) -> None:
        self._store[self._name] += amount

    @property
    def value(self) -> int:
        return self._store[self._name]


class _NullCounter:
    __slots__ = ()

    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


_NULL_COUNTER = _NullCounter()


class NullMetricsRegistry:
    """No-op registry: the disabled-mode null object."""

    __slots__ = ()

    enabled = False

    def register_gauge(self, name: str, fn: Callable[[], float]) -> None:
        pass

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def sample(self, now: int) -> None:
        pass

    def gauge_names(self) -> list[str]:
        return []

    def series(self, name: str) -> list[tuple[int, float]]:
        return []

    def counters(self) -> dict[str, int]:
        return {}


#: Shared disabled-mode singleton.
NULL_METRICS = NullMetricsRegistry()


class MetricsRegistry:
    """Named gauges (sampled into time series) plus named counters."""

    enabled = True

    def __init__(self) -> None:
        self._gauges: dict[str, Callable[[], float]] = {}
        self._series: dict[str, list[tuple[int, float]]] = {}
        self._counters: dict[str, int] = {}
        self._samples_taken = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a zero-argument callable sampled on every tick.

        Gauge names are dotted ``component.metric`` paths (metric naming
        conventions live in docs/observability.md).  Re-registering a
        name is an error: two components fighting over one series is a
        wiring bug.
        """
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} already registered")
        self._gauges[name] = fn
        self._series[name] = []

    def counter(self, name: str) -> _Counter:
        """A named integer counter handle (created on first use)."""
        self._counters.setdefault(name, 0)
        return _Counter(self._counters, name)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, now: int) -> None:
        """Poll every gauge once, appending ``(now, value)`` per series."""
        for name, fn in self._gauges.items():
            self._series[name].append((now, float(fn())))
        self._samples_taken += 1

    @property
    def samples_taken(self) -> int:
        return self._samples_taken

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def gauge_names(self) -> list[str]:
        return sorted(self._gauges)

    def series(self, name: str) -> list[tuple[int, float]]:
        return list(self._series.get(name, []))

    def last(self, name: str) -> float | None:
        points = self._series.get(name)
        if not points:
            return None
        return points[-1][1]

    def mean(self, name: str) -> float:
        points = self._series.get(name)
        if not points:
            return 0.0
        return sum(value for _t, value in points) / len(points)

    def peak(self, name: str) -> float:
        points = self._series.get(name)
        if not points:
            return 0.0
        return max(value for _t, value in points)

    def counters(self) -> dict[str, int]:
        return dict(self._counters)

    def to_dict(self) -> dict:
        return {
            "series": {
                name: [[t, v] for t, v in points]
                for name, points in sorted(self._series.items())
            },
            "counters": dict(sorted(self._counters.items())),
            "samples_taken": self._samples_taken,
        }

    def write_json(self, path: str | Path) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict()))
        return target


class MetricsSampler:
    """Engine-scheduled periodic gauge sampler.

    One daemon event every ``interval`` cycles: sample every registered
    gauge and (when tracing) mirror the values as Chrome counter events
    so queue depths plot directly under the request timeline.  Because
    the events are daemons, the sampler self-terminates with the real
    workload and never perturbs ``engine.now``.
    """

    def __init__(
        self,
        engine,
        metrics: MetricsRegistry,
        interval: int,
        *,
        trace=NULL_TRACE,
    ) -> None:
        if interval < 1:
            raise ValueError("sampling interval must be >= 1 cycle")
        self.engine = engine
        self.metrics = metrics
        self.interval = interval
        self.trace = trace
        self._started = False

    def start(self) -> None:
        """Schedule the first tick at the current cycle."""
        if self._started:
            raise RuntimeError("sampler already started")
        self._started = True
        self.engine.schedule_daemon(0, self._tick)

    def _tick(self) -> None:
        now = self.engine.now
        self.metrics.sample(now)
        if self.trace.enabled:
            for name in self.metrics.gauge_names():
                value = self.metrics.last(name)
                if value is not None:
                    self.trace.counter("metrics", name, now, value=value)
        self.engine.schedule_daemon(self.interval, self._tick)
