"""Trace recording: span/instant/counter events on simulated timelines.

The recorder collects Chrome trace-event objects (the format read by
``chrome://tracing`` and Perfetto) keyed to the simulation clock, so a
request's journey through SM -> L1/L2 TLB -> MSHR -> PWB -> walker ->
memory can be inspected visually.  Timestamps are GPU core cycles,
rendered by the viewers as microseconds.

Two recorder flavours share one API:

* :class:`TraceRecorder` — the real thing.  Buffers events in memory
  and exports Chrome-trace JSON or a plain JSONL stream.
* :class:`NullTraceRecorder` — the default.  Every method is a no-op
  and ``enabled`` is False, so instrumented components pay exactly one
  attribute load and branch per hook site when tracing is off.

Hook sites must guard event construction::

    if self._trace.enabled:
        self._trace.instant("l2tlb", "lookup", now, vpn=vpn, hit=False)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

#: Ordered latency components of one page walk; the layout order used
#: by :meth:`TraceRecorder.lifecycle` and the Figure 7/18 breakdowns.
WALK_COMPONENTS = ("queueing", "communication", "execution", "access")


class NullTraceRecorder:
    """No-op recorder: the disabled-mode null object."""

    __slots__ = ()

    enabled = False

    def new_id(self) -> int:
        return 0

    def begin(self, track: str, name: str, ts: int, **args: Any) -> None:
        pass

    def end(self, track: str, ts: int) -> None:
        pass

    def complete(self, track: str, name: str, ts: int, dur: int, **args: Any) -> None:
        pass

    def instant(self, track: str, name: str, ts: int, **args: Any) -> None:
        pass

    def counter(self, track: str, name: str, ts: int, **values: float) -> None:
        pass

    def async_begin(self, name: str, aid: int, ts: int, **args: Any) -> None:
        pass

    def async_end(self, name: str, aid: int, ts: int, **args: Any) -> None:
        pass

    def lifecycle(
        self, name: str, aid: int, end_ts: int, components: Mapping[str, int], **args: Any
    ) -> None:
        pass

    def events(self) -> list[dict]:
        return []


#: Shared disabled-mode singleton.
NULL_TRACE = NullTraceRecorder()


class TraceRecorder:
    """Buffers span/instant/counter events and exports Chrome trace JSON.

    Tracks are named lanes (one Chrome "thread" each); span nesting is
    enforced per track so ``begin``/``end`` pairs always close in LIFO
    order.  Request lifecycles that hop between components use async
    events (``async_begin``/``async_end``) keyed by a recorder-issued id
    instead, since they cannot nest within a single lane.
    """

    enabled = True

    def __init__(self, *, process_name: str = "repro") -> None:
        self._events: list[dict] = []
        self._pid = 1
        self._tids: dict[str, int] = {}
        self._stacks: dict[int, list[str]] = {}
        self._next_id = 0
        self._events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": self._pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": process_name},
            }
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def new_id(self) -> int:
        """A fresh async-event id (used to follow one request around)."""
        self._next_id += 1
        return self._next_id

    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[track] = tid
            self._events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": self._pid,
                    "tid": tid,
                    "ts": 0,
                    "args": {"name": track},
                }
            )
        return tid

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------
    def begin(self, track: str, name: str, ts: int, **args: Any) -> None:
        """Open a span on ``track``; close it with :meth:`end`."""
        tid = self._tid(track)
        self._stacks.setdefault(tid, []).append(name)
        event: dict = {"ph": "B", "name": name, "pid": self._pid, "tid": tid, "ts": ts}
        if args:
            event["args"] = args
        self._events.append(event)

    def end(self, track: str, ts: int) -> str:
        """Close the innermost open span on ``track``; returns its name."""
        tid = self._tid(track)
        stack = self._stacks.get(tid)
        if not stack:
            raise ValueError(f"end() without begin() on track {track!r}")
        name = stack.pop()
        self._events.append(
            {"ph": "E", "name": name, "pid": self._pid, "tid": tid, "ts": ts}
        )
        return name

    def complete(self, track: str, name: str, ts: int, dur: int, **args: Any) -> None:
        """A self-contained span (Chrome "X" phase): start + duration."""
        if dur < 0:
            raise ValueError(f"span {name!r} has negative duration {dur}")
        event: dict = {
            "ph": "X",
            "name": name,
            "pid": self._pid,
            "tid": self._tid(track),
            "ts": ts,
            "dur": dur,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def instant(self, track: str, name: str, ts: int, **args: Any) -> None:
        """A point event ("i" phase, thread scope)."""
        event: dict = {
            "ph": "i",
            "name": name,
            "pid": self._pid,
            "tid": self._tid(track),
            "ts": ts,
            "s": "t",
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def counter(self, track: str, name: str, ts: int, **values: float) -> None:
        """A counter sample ("C" phase): plotted as stacked series."""
        self._events.append(
            {
                "ph": "C",
                "name": name,
                "pid": self._pid,
                "tid": self._tid(track),
                "ts": ts,
                "args": dict(values),
            }
        )

    def async_begin(self, name: str, aid: int, ts: int, **args: Any) -> None:
        """Open one leg of an async (cross-track) span, keyed by ``aid``."""
        event: dict = {
            "ph": "b",
            "cat": "request",
            "id": aid,
            "name": name,
            "pid": self._pid,
            "tid": self._tid("requests"),
            "ts": ts,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def async_end(self, name: str, aid: int, ts: int, **args: Any) -> None:
        event: dict = {
            "ph": "e",
            "cat": "request",
            "id": aid,
            "name": name,
            "pid": self._pid,
            "tid": self._tid("requests"),
            "ts": ts,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def lifecycle(
        self,
        name: str,
        aid: int,
        end_ts: int,
        components: Mapping[str, int],
        **args: Any,
    ) -> None:
        """One finished request as an async span with nested component legs.

        The request occupies ``[end_ts - total, end_ts]``; each non-zero
        component becomes a nested async span laid out back-to-back in
        :data:`WALK_COMPONENTS` order (then any extra components in
        insertion order).  Summing the nested spans by name therefore
        reconstructs the same latency breakdown the
        :class:`~repro.sim.stats.LatencyTracker` aggregates report.
        """
        total = sum(components.values())
        start = end_ts - total
        self.async_begin(name, aid, start, **args)
        cursor = start
        ordered = [c for c in WALK_COMPONENTS if c in components]
        ordered += [c for c in components if c not in WALK_COMPONENTS]
        for component in ordered:
            span = components[component]
            if span <= 0:
                continue
            self.async_begin(f"{name}.{component}", aid, cursor)
            cursor += span
            self.async_end(f"{name}.{component}", aid, cursor)
        self.async_end(name, aid, end_ts)

    # ------------------------------------------------------------------
    # Introspection / analysis
    # ------------------------------------------------------------------
    def events(self) -> list[dict]:
        return list(self._events)

    @property
    def num_events(self) -> int:
        return len(self._events)

    def open_spans(self) -> int:
        """Spans begun but not yet ended (should be 0 before export)."""
        return sum(len(stack) for stack in self._stacks.values())

    def span_durations(self, prefix: str = "") -> dict[str, int]:
        """Total duration per span name (X spans and async b/e pairs).

        This is how a recorded trace is folded back into a Figure 7-style
        latency breakdown: ``span_durations("walk.")`` sums the nested
        component legs emitted by :meth:`lifecycle`.
        """
        totals: dict[str, int] = {}
        open_async: dict[tuple, list[int]] = {}
        open_sync: dict[int, list[tuple[str, int]]] = {}
        for event in self._events:
            name = event.get("name", "")
            ph = event["ph"]
            if ph == "X" and name.startswith(prefix):
                totals[name] = totals.get(name, 0) + event["dur"]
            elif ph == "b":
                open_async.setdefault((event["id"], name), []).append(event["ts"])
            elif ph == "e":
                starts = open_async.get((event["id"], name))
                if starts and name.startswith(prefix):
                    totals[name] = totals.get(name, 0) + event["ts"] - starts.pop()
            elif ph == "B":
                open_sync.setdefault(event["tid"], []).append((name, event["ts"]))
            elif ph == "E":
                stack = open_sync.get(event["tid"])
                if stack:
                    opened_name, start = stack.pop()
                    if opened_name.startswith(prefix):
                        totals[opened_name] = (
                            totals.get(opened_name, 0) + event["ts"] - start
                        )
        return totals

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The exportable Chrome trace-event document."""
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {"clock": "gpu-cycles", "producer": "repro.obs"},
        }

    def write_chrome(self, path: str | Path) -> Path:
        """Write Chrome trace JSON; open in chrome://tracing or Perfetto."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.chrome_trace()))
        return target

    def write_jsonl(self, path: str | Path) -> Path:
        """Write one event per line (easy to stream/grep/post-process)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w") as handle:
            for event in self._events:
                handle.write(json.dumps(event) + "\n")
        return target


def read_jsonl(path: str | Path) -> Iterable[dict]:
    """Load events back from a JSONL stream written by ``write_jsonl``."""
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
