"""Host-performance benchmarking: the measurement substrate for perf PRs.

The simulator is deterministic, so *simulated* outcomes never drift —
but the simulator's own speed (events/sec of host wall clock) is what
every optimisation PR changes, and until now nothing measured it.  This
module closes that gap:

* :class:`BenchHarness` — runs a config x workload matrix with warmup
  and N timed repeats, recording host-side throughput (events/sec,
  simulated cycles/sec, wall seconds, peak RSS) plus run metadata
  (python version, platform, git SHA, config fingerprints) into a
  :class:`BenchReport`.
* :class:`BenchReport` — the versioned, JSON-committed schema behind
  ``BENCH_*.json`` trajectory files (``repro bench --out``).
* :func:`compare_reports` — noise-aware diff of two reports: verdicts
  are computed on the median of repeats with a per-cell tolerance that
  widens with the observed repeat spread, so a loaded CI host does not
  cry wolf while a real 2x slowdown cannot hide.
* :func:`perf_metadata` — the fingerprint-excluded ``perf`` dict the
  harness attaches to every :class:`~repro.gpu.gpu.SimulationResult`,
  so the ResultStore accumulates the throughput trajectory passively.

Layering note: this module lives in ``repro.obs`` (no module-level
repro imports); the harness pulls the simulator in lazily inside
:meth:`BenchHarness.run`, the sanctioned cycle-breaking pattern.
"""

from __future__ import annotations

import json
import platform
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

#: Bump when the report layout changes; loads reject other versions so
#: a stale committed baseline fails loudly instead of comparing garbage.
BENCH_SCHEMA_VERSION = 1

#: Default relative tolerance for :func:`compare_reports` — a cell must
#: slow down by more than this fraction (or the observed noise, if
#: larger) before it counts as a regression.  Chosen so same-machine
#: re-runs pass comfortably while a 2x slowdown is always flagged.
DEFAULT_THRESHOLD = 0.4

#: Cells whose median wall time sits under this floor (seconds) are too
#: small to time reliably; compare treats them as within noise.
DEFAULT_MIN_SECONDS = 0.005


class BenchError(ValueError):
    """Raised on schema violations, non-determinism, or bad comparisons."""


# ----------------------------------------------------------------------
# Host-side measurement primitives
# ----------------------------------------------------------------------
def peak_rss_kb() -> int:
    """Peak resident set size of this process in KiB (0 if unknown).

    Monotone over the process lifetime — per-cell values in a report
    therefore reflect "RSS high-water mark so far", which is still the
    number a memory-regression guard wants.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-unix
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        rss //= 1024
    return int(rss)


def git_sha() -> str | None:
    """Current commit SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def run_metadata() -> dict:
    """Host/toolchain identity stamped into every report."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git_sha": git_sha(),
        "created_unix": int(time.time()),
    }


def perf_metadata(*, wall_seconds: float, events: int, cycles: int) -> dict:
    """The ``SimulationResult.perf`` payload for one finished run.

    Host-side only — deliberately excluded from result fingerprints, so
    two bit-identical simulations on hosts of different speeds still
    compare equal.
    """
    wall = max(0.0, float(wall_seconds))
    return {
        "wall_seconds": wall,
        "events": int(events),
        "events_per_sec": (events / wall) if wall > 0 else 0.0,
        "cycles_per_sec": (cycles / wall) if wall > 0 else 0.0,
        "peak_rss_kb": peak_rss_kb(),
    }


# ----------------------------------------------------------------------
# Report schema
# ----------------------------------------------------------------------
@dataclass
class BenchCell:
    """One (config, benchmark) point: N timed repeats of one simulation.

    ``events``/``cycles``/``fingerprint`` are single values because the
    simulation is deterministic — the harness asserts every repeat
    produced the identical fingerprint before recording the cell.
    """

    config: str
    benchmark: str
    #: Wall seconds per timed repeat (warmup runs excluded), run order.
    wall_seconds: list[float]
    #: Engine events processed by one repeat.
    events: int
    #: Final simulated cycle count of one repeat.
    cycles: int
    #: sha256 digest of the result fingerprint (bit-identity witness).
    fingerprint: str
    #: Process RSS high-water mark after this cell finished (KiB).
    peak_rss_kb: int = 0

    def __post_init__(self) -> None:
        if not self.wall_seconds:
            raise BenchError(
                f"cell {self.config}/{self.benchmark} has no timed repeats"
            )

    # -- derived statistics -------------------------------------------
    @property
    def median_wall(self) -> float:
        return statistics.median(self.wall_seconds)

    @property
    def events_per_sec(self) -> float:
        wall = self.median_wall
        return self.events / wall if wall > 0 else 0.0

    @property
    def cycles_per_sec(self) -> float:
        wall = self.median_wall
        return self.cycles / wall if wall > 0 else 0.0

    @property
    def rel_spread(self) -> float:
        """(max - min) / median of the repeats — the cell's own noise."""
        median = self.median_wall
        if median <= 0:
            return 0.0
        return (max(self.wall_seconds) - min(self.wall_seconds)) / median

    # -- serialization ------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "benchmark": self.benchmark,
            "wall_seconds": list(self.wall_seconds),
            "events": self.events,
            "cycles": self.cycles,
            "fingerprint": self.fingerprint,
            "peak_rss_kb": self.peak_rss_kb,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BenchCell":
        try:
            return cls(
                config=str(data["config"]),
                benchmark=str(data["benchmark"]),
                wall_seconds=[float(w) for w in data["wall_seconds"]],
                events=int(data["events"]),
                cycles=int(data["cycles"]),
                fingerprint=str(data["fingerprint"]),
                peak_rss_kb=int(data.get("peak_rss_kb", 0)),
            )
        except (KeyError, TypeError) as defect:
            raise BenchError(f"malformed bench cell: {defect!r}") from None


@dataclass
class BenchReport:
    """A versioned matrix of :class:`BenchCell`s plus run metadata."""

    meta: dict = field(default_factory=dict)
    cells: list[BenchCell] = field(default_factory=list)
    schema: int = BENCH_SCHEMA_VERSION

    # -- lookup -------------------------------------------------------
    def keys(self) -> list[tuple[str, str]]:
        return [(cell.config, cell.benchmark) for cell in self.cells]

    def cell(self, config: str, benchmark: str) -> BenchCell | None:
        for cell in self.cells:
            if cell.config == config and cell.benchmark == benchmark:
                return cell
        return None

    # -- serialization ------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "meta": dict(self.meta),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BenchReport":
        if not isinstance(data, Mapping):
            raise BenchError(
                f"bench report must be a mapping, got {type(data).__name__}"
            )
        schema = data.get("schema")
        if schema != BENCH_SCHEMA_VERSION:
            raise BenchError(
                f"unsupported bench schema {schema!r} "
                f"(this build reads version {BENCH_SCHEMA_VERSION}); "
                f"refresh the report with `repro bench --out`"
            )
        cells_raw = data.get("cells")
        if not isinstance(cells_raw, list):
            raise BenchError("bench report must contain a 'cells' list")
        report = cls(
            meta=dict(data.get("meta") or {}),
            cells=[BenchCell.from_dict(cell) for cell in cells_raw],
        )
        seen = set()
        for key in report.keys():
            if key in seen:
                raise BenchError(f"duplicate bench cell {key[0]}/{key[1]}")
            seen.add(key)
        return report

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        if target.parent != Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    @classmethod
    def load(cls, path: str | Path) -> "BenchReport":
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as defect:
            raise BenchError(f"unparseable bench report {path}: {defect}") from None
        return cls.from_dict(raw)

    # -- presentation -------------------------------------------------
    def rows(self) -> list[list]:
        """Table rows (config, benchmark, median wall, ev/s, cyc/s, spread)."""
        return [
            [
                cell.config,
                cell.benchmark,
                f"{cell.median_wall:.3f}s",
                f"{cell.events_per_sec:,.0f}",
                f"{cell.cycles_per_sec:,.0f}",
                f"{cell.rel_spread:.0%}",
            ]
            for cell in self.cells
        ]

    def render(self) -> str:
        """Plain-text table (the CLI uses the richer format_table)."""
        header = ["config", "benchmark", "median", "events/s", "cycles/s", "spread"]
        rows = [header] + self.rows()
        widths = [max(len(str(row[i])) for row in rows) for i in range(len(header))]
        return "\n".join(
            "  ".join(str(value).ljust(width) for value, width in zip(row, widths))
            for row in rows
        )


# ----------------------------------------------------------------------
# Comparison (the CI regression guard)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellVerdict:
    """One cell's comparison outcome."""

    config: str
    benchmark: str
    #: "regression" | "improvement" | "ok" | "missing" | "new"
    verdict: str
    #: new median wall / old median wall (None for missing/new cells).
    ratio: float | None = None
    #: Relative tolerance this cell was judged against.
    tolerance: float | None = None
    old_wall: float | None = None
    new_wall: float | None = None
    note: str = ""

    @property
    def failed(self) -> bool:
        return self.verdict in ("regression", "missing")


@dataclass
class BenchComparison:
    """Every cell verdict of one old-vs-new report diff."""

    verdicts: list[CellVerdict]
    threshold: float

    @property
    def regressions(self) -> list[CellVerdict]:
        return [v for v in self.verdicts if v.verdict == "regression"]

    @property
    def improvements(self) -> list[CellVerdict]:
        return [v for v in self.verdicts if v.verdict == "improvement"]

    @property
    def missing(self) -> list[CellVerdict]:
        return [v for v in self.verdicts if v.verdict == "missing"]

    @property
    def passed(self) -> bool:
        """True when no cell regressed and none went missing."""
        return not any(v.failed for v in self.verdicts)

    def summary(self) -> str:
        counts: dict[str, int] = {}
        for verdict in self.verdicts:
            counts[verdict.verdict] = counts.get(verdict.verdict, 0) + 1
        parts = ", ".join(f"{n} {kind}" for kind, n in sorted(counts.items()))
        state = "PASS" if self.passed else "FAIL"
        return f"bench compare {state}: {parts or 'no cells'}"

    def rows(self) -> list[list]:
        rows = []
        for v in self.verdicts:
            rows.append(
                [
                    v.config,
                    v.benchmark,
                    v.verdict.upper() if v.failed else v.verdict,
                    f"{v.old_wall:.3f}s" if v.old_wall is not None else "-",
                    f"{v.new_wall:.3f}s" if v.new_wall is not None else "-",
                    f"{v.ratio:.2f}x" if v.ratio is not None else "-",
                    f"{v.tolerance:.0%}" if v.tolerance is not None else "-",
                    v.note,
                ]
            )
        return rows

    def render(self) -> str:
        header = ["config", "benchmark", "verdict", "old", "new", "ratio", "tol", "note"]
        rows = [header] + self.rows()
        widths = [max(len(str(row[i])) for row in rows) for i in range(len(header))]
        body = "\n".join(
            "  ".join(str(value).ljust(width) for value, width in zip(row, widths))
            for row in rows
        )
        return body + "\n" + self.summary()


def compare_reports(
    old: BenchReport,
    new: BenchReport,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    noise_factor: float = 3.0,
) -> BenchComparison:
    """Diff two reports cell-by-cell with noise-aware thresholds.

    Per cell, the verdict compares medians of repeats.  The effective
    tolerance is ``max(threshold, noise_factor * rel_spread)`` over both
    cells' observed repeat spreads — a cell that timed noisily must move
    further before it is believed.  Cells present in ``old`` but absent
    from ``new`` are ``missing`` (a shrunk matrix fails the guard);
    cells only in ``new`` are ``new`` (growing the matrix is fine).

    Raises :class:`BenchError` when the reports were taken at different
    scales or seeds — those wall clocks are not comparable.
    """
    # Local import: obs is a leaf layer (module-imports nothing
    # internal); the shared verdict primitive lives in the analysis
    # package so ``repro report --against`` and this guard agree on
    # what a regression is.
    from repro.analysis.stat_tests import relative_verdict

    for knob in ("scale", "seed", "footprint_scale"):
        old_value, new_value = old.meta.get(knob), new.meta.get(knob)
        if old_value is not None and new_value is not None and old_value != new_value:
            raise BenchError(
                f"reports are not comparable: {knob} differs "
                f"({old_value!r} vs {new_value!r})"
            )
    verdicts: list[CellVerdict] = []
    new_keys = set(new.keys())
    for old_cell in old.cells:
        key = (old_cell.config, old_cell.benchmark)
        new_cell = new.cell(*key)
        if new_cell is None:
            verdicts.append(
                CellVerdict(*key, "missing", note="cell absent from new report")
            )
            continue
        new_keys.discard(key)
        old_wall, new_wall = old_cell.median_wall, new_cell.median_wall
        tolerance = max(
            threshold,
            noise_factor * old_cell.rel_spread,
            noise_factor * new_cell.rel_spread,
        )
        note = ""
        if old_cell.fingerprint != new_cell.fingerprint:
            note = "fingerprint drifted (different simulation!)"
        verdict, ratio = relative_verdict(
            old_wall, new_wall, tolerance=tolerance, floor=min_seconds
        )
        if old_wall < min_seconds and new_wall < min_seconds:
            note = note or "below timing floor"
        verdicts.append(
            CellVerdict(
                key[0],
                key[1],
                verdict,
                ratio=ratio,
                tolerance=tolerance,
                old_wall=old_wall,
                new_wall=new_wall,
                note=note,
            )
        )
    for key in sorted(new_keys):
        cell = new.cell(*key)
        verdicts.append(
            CellVerdict(
                key[0],
                key[1],
                "new",
                new_wall=cell.median_wall if cell else None,
                note="cell absent from old report",
            )
        )
    return BenchComparison(verdicts=verdicts, threshold=threshold)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
#: Progress callback: (config_label, benchmark, done_cells, total_cells).
BenchProgressFn = Callable[[str, str, int, int], None]


class BenchHarness:
    """Runs a config x workload matrix with warmup + N timed repeats.

    ``configs`` maps display labels to built ``GPUConfig`` objects (or
    inline config mappings); labels become the report's cell keys, so a
    later run with the same labels is comparable even if the underlying
    knobs moved.  The harness times only the event loop (workload and
    machine construction are excluded), rebuilds the simulator fresh per
    repeat, and asserts every repeat's result fingerprint is identical —
    a benchmark that perturbs the simulation is a bug, not a datapoint.
    """

    def __init__(
        self,
        configs: Mapping[str, Any],
        benchmarks: Sequence[str],
        *,
        scale: float = 0.05,
        repeats: int = 3,
        warmup: int = 1,
        seed: int | None = 7,
        footprint_scale: float = 1.0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if not configs:
            raise BenchError("bench needs at least one configuration")
        if not benchmarks:
            raise BenchError("bench needs at least one benchmark")
        if repeats < 1:
            raise BenchError(f"repeats must be >= 1, got {repeats}")
        if warmup < 0:
            raise BenchError(f"warmup must be >= 0, got {warmup}")
        if scale <= 0:
            raise BenchError(f"scale must be positive, got {scale}")
        self.configs = dict(configs)
        self.benchmarks = list(benchmarks)
        self.scale = scale
        self.repeats = repeats
        self.warmup = warmup
        self.seed = seed
        self.footprint_scale = footprint_scale
        self.clock = clock

    def run(self, progress: BenchProgressFn | None = None) -> BenchReport:
        """Execute the full matrix; returns the finished report."""
        cells: list[BenchCell] = []
        total = len(self.configs) * len(self.benchmarks)
        done = 0
        for label, config in self.configs.items():
            for benchmark in self.benchmarks:
                cells.append(self._run_cell(label, config, benchmark))
                done += 1
                if progress is not None:
                    progress(label, benchmark, done, total)
        meta = run_metadata()
        meta.update(
            {
                "scale": self.scale,
                "repeats": self.repeats,
                "warmup": self.warmup,
                "seed": self.seed,
                "footprint_scale": self.footprint_scale,
            }
        )
        return BenchReport(meta=meta, cells=cells)

    # -- internals ----------------------------------------------------
    def _run_cell(self, label: str, config: Any, benchmark: str) -> BenchCell:
        walls: list[float] = []
        events = cycles = 0
        fingerprints: set[str] = set()
        for index in range(self.warmup + self.repeats):
            wall, events, cycles, digest = self._run_once(config, benchmark)
            fingerprints.add(digest)
            if index >= self.warmup:
                walls.append(wall)
        if len(fingerprints) != 1:
            raise BenchError(
                f"bench cell {label}/{benchmark} is non-deterministic: "
                f"{len(fingerprints)} distinct fingerprints across "
                f"{self.warmup + self.repeats} runs"
            )
        return BenchCell(
            config=label,
            benchmark=benchmark,
            wall_seconds=walls,
            events=events,
            cycles=cycles,
            fingerprint=fingerprints.pop(),
            peak_rss_kb=peak_rss_kb(),
        )

    def _run_once(self, config: Any, benchmark: str) -> tuple[float, int, int, str]:
        # Local imports: obs sits below the machine model in the layer
        # DAG, so the harness reaches up lazily (see check_layering.py).
        from repro.config import DEFAULT_CONFIGS
        from repro.gpu.gpu import GPUSimulator
        from repro.harness.runner import build_workload, coerce_config
        from repro.harness.store import fingerprint_digest

        if isinstance(config, str):
            config = DEFAULT_CONFIGS.get(config)
        built = coerce_config(config)
        workload = build_workload(
            benchmark,
            built,
            scale=self.scale,
            footprint_scale=self.footprint_scale,
            seed=self.seed,
        )
        sim = GPUSimulator(built, workload)
        started = self.clock()
        result = sim.run()
        wall = self.clock() - started
        return (
            wall,
            sim.engine.events_processed,
            result.cycles,
            fingerprint_digest(result),
        )
