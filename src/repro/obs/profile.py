"""Engine self-profile analysis: ranked sites, component shares, flamegraphs.

The engine accumulates wall-clock per callback site when profiling is on
(:meth:`repro.sim.engine.Engine.enable_profiling`); this module turns
that raw ``(qualname, calls, seconds)`` table into the views ``repro
profile`` prints:

* :func:`component_shares` — wall-clock fraction per component, where a
  component is the class part of the callback qualname (``L2TLB.lookup``
  -> ``L2TLB``); the "where does simulator time go" headline.
* :func:`collapsed_stacks` — the semicolon-delimited collapsed-stack
  format every flamegraph tool consumes (``flamegraph.pl``, speedscope,
  inferno): one ``root;component;site <microseconds>`` line per site.

Everything here is pure arithmetic over profile rows — stdlib only, in
keeping with the obs layer's zero-import rule.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

#: One profile row: (callback qualname, calls, wall seconds) — exactly
#: what :meth:`~repro.sim.engine.Engine.profile_report` returns.
ProfileRow = tuple[str, int, float]


def site_component(site: str) -> str:
    """The component a callback site belongs to (qualname class part).

    ``L2TLB.lookup`` -> ``L2TLB``; ``MetricsSampler._tick`` ->
    ``MetricsSampler``; a bare function or lambda repr maps to itself.
    """
    head, sep, _tail = site.partition(".")
    return head if sep else site


def component_shares(rows: Iterable[ProfileRow]) -> dict[str, float]:
    """Wall-clock fraction per component, descending (sums to 1.0)."""
    totals: dict[str, float] = {}
    grand = 0.0
    for site, _calls, seconds in rows:
        component = site_component(site)
        totals[component] = totals.get(component, 0.0) + seconds
        grand += seconds
    if grand <= 0:
        return {name: 0.0 for name in totals}
    return dict(
        sorted(
            ((name, seconds / grand) for name, seconds in totals.items()),
            key=lambda item: item[1],
            reverse=True,
        )
    )


def collapsed_stacks(
    rows: Iterable[ProfileRow], *, root: str = "repro"
) -> list[str]:
    """Collapsed-stack lines: ``root;component;site <microseconds>``.

    Weights are integer microseconds (flamegraph tools require integer
    sample counts); sites that round to zero are dropped.  Semicolons
    inside a site (impossible for qualnames, but cheap to guard) are
    replaced so they cannot split a frame.
    """
    lines = []
    for site, _calls, seconds in rows:
        usec = round(seconds * 1_000_000)
        if usec <= 0:
            continue
        safe = site.replace(";", ":")
        lines.append(f"{root};{site_component(safe)};{safe} {usec}")
    return lines


def write_collapsed(
    path: str | Path, rows: Sequence[ProfileRow], *, root: str = "repro"
) -> Path:
    """Write the collapsed-stack file; returns its path."""
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        "\n".join(collapsed_stacks(rows, root=root)) + "\n", encoding="utf-8"
    )
    return target
