"""Structural validation of exported Chrome trace-event documents.

``chrome://tracing`` and Perfetto silently drop malformed events, which
turns exporter bugs into "my spans vanished" mysteries.  This validator
enforces the subset of the trace-event format the recorder emits, so
tests and the CI smoke job fail loudly instead:

* top level: an object with a ``traceEvents`` list;
* every event: ``ph``/``pid``/``tid``/``ts`` present and well-typed;
* duration events: ``B``/``E`` balanced in LIFO order per (pid, tid);
* complete events: non-negative integer ``dur``;
* async events: ``b``/``e`` balanced per (cat, id, name);
* counter events: numeric values only.
"""

from __future__ import annotations

from typing import Any

#: Phases the recorder emits (a subset of the full trace-event spec).
KNOWN_PHASES = frozenset({"B", "E", "X", "i", "I", "C", "b", "e", "n", "M"})

#: Phases for which a ``name`` field is mandatory.
NAMED_PHASES = frozenset({"B", "X", "i", "I", "C", "b", "e", "n", "M"})


class TraceSchemaError(ValueError):
    """Raised when a trace document violates the trace-event format."""


def _fail(index: int, message: str) -> None:
    raise TraceSchemaError(f"traceEvents[{index}]: {message}")


def validate_chrome_trace(document: Any) -> int:
    """Validate a Chrome trace document; returns the number of events.

    Accepts either the object form (``{"traceEvents": [...]}``) or the
    bare event array.  Raises :class:`TraceSchemaError` on the first
    violation.
    """
    if isinstance(document, dict):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            raise TraceSchemaError("document must contain a 'traceEvents' list")
    elif isinstance(document, list):
        events = document
    else:
        raise TraceSchemaError("document must be an object or an event array")

    open_spans: dict[tuple[Any, Any], list[str]] = {}
    open_async: dict[tuple[Any, Any, Any], int] = {}

    for index, event in enumerate(events):
        if not isinstance(event, dict):
            _fail(index, "event is not an object")
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            _fail(index, f"unknown phase {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                _fail(index, f"missing/non-integer {key!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            _fail(index, f"missing/negative timestamp {ts!r}")
        if ph in NAMED_PHASES and not isinstance(event.get("name"), str):
            _fail(index, f"phase {ph!r} requires a string 'name'")
        if "args" in event and not isinstance(event["args"], dict):
            _fail(index, "'args' must be an object")

        lane = (event["pid"], event["tid"])
        if ph == "B":
            open_spans.setdefault(lane, []).append(event["name"])
        elif ph == "E":
            stack = open_spans.get(lane)
            if not stack:
                _fail(index, "'E' event with no matching 'B' on its lane")
            opened = stack.pop()
            name = event.get("name")
            if name is not None and name != opened:
                _fail(index, f"'E' closes {name!r} but {opened!r} is innermost")
        elif ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                _fail(index, f"'X' event needs non-negative 'dur', got {dur!r}")
        elif ph in ("b", "e"):
            if "id" not in event:
                _fail(index, f"async {ph!r} event needs an 'id'")
            key = (event.get("cat"), event["id"], event["name"])
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                if open_async.get(key, 0) < 1:
                    _fail(index, f"async 'e' with no open 'b' for {key!r}")
                open_async[key] -= 1
        elif ph == "C":
            values = event.get("args", {})
            if not values:
                _fail(index, "'C' event needs at least one counter value")
            for key, value in values.items():
                if not isinstance(value, (int, float)):
                    _fail(index, f"counter value {key}={value!r} is not numeric")

    unclosed = {lane: stack for lane, stack in open_spans.items() if stack}
    if unclosed:
        raise TraceSchemaError(f"unclosed 'B' spans at end of trace: {unclosed}")
    dangling = [key for key, count in open_async.items() if count]
    if dangling:
        raise TraceSchemaError(f"unclosed async spans: {dangling[:5]}")
    return len(events)
