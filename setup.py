"""Shim so editable installs work without the ``wheel`` package.

The offline environment lacks ``wheel``; ``pip install -e . --no-use-pep517``
(or plain ``pip install -e .`` on older pips) falls back to
``setup.py develop`` through this file.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
